// Command benchrunner regenerates the figures and tables of the paper's
// evaluation. Each experiment prints a table with the same rows/series the
// paper reports; see DESIGN.md for the experiment index and EXPERIMENTS.md
// for a discussion of paper-vs-measured results.
//
// Usage:
//
//	benchrunner -experiment all                # run everything
//	benchrunner -experiment fig5,table2        # run a subset
//	benchrunner -list                          # list experiment ids
//	benchrunner -experiment fig9 -rmat-scale 22
//	benchrunner -perf-json BENCH_1.json        # archive the perf trajectory
//	benchrunner -plan-trace                    # print adaptive plan traces
//	benchrunner -plan-trace -cost-cache costs.json  # warm-start adaptive cases
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	everythinggraph "github.com/epfl-repro/everythinggraph"
	"github.com/epfl-repro/everythinggraph/internal/bench"
)

func main() {
	var (
		experiments = flag.String("experiment", "all", "comma-separated experiment ids, or 'all'")
		list        = flag.Bool("list", false, "list available experiments and exit")
		rmatScale   = flag.Int("rmat-scale", bench.Default.RMATScale, "log2 of the RMAT vertex count")
		twScale     = flag.Int("twitter-scale", bench.Default.TwitterScale, "log2 of the Twitter-profile vertex count")
		roadSide    = flag.Int("road-side", bench.Default.RoadWidth, "road lattice side length")
		prIters     = flag.Int("pagerank-iterations", bench.Default.PagerankIterations, "PageRank iteration count")
		workers     = flag.Int("workers", 0, "worker count (0 = all CPUs)")
		seed        = flag.Int64("seed", bench.Default.Seed, "dataset generation seed")
		quick       = flag.Bool("quick", false, "use the small quick scale (for smoke runs)")
		perfJSON    = flag.String("perf-json", "", "run the perf trajectory suite (RMAT-scale-16 engine microbenchmarks) and write the JSON report to this path instead of running experiments")
		planTrace   = flag.Bool("plan-trace", false, "run the adaptive (-flow auto) cases once — in-memory and streamed over a grid store — and print their per-iteration plan traces instead of running experiments")
		costCache   = flag.String("cost-cache", "", "JSON cost cache for the adaptive cases of -perf-json and -plan-trace: seed each case's cost model with this dataset's measured per-edge plan costs and append this run's measurements (same file format as egraph -cost-cache)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	scale := bench.Default
	if *quick {
		scale = bench.Quick
	}
	scale.RMATScale = *rmatScale
	scale.TwitterScale = *twScale
	scale.RoadWidth, scale.RoadHeight = *roadSide, *roadSide
	scale.PagerankIterations = *prIters
	scale.Workers = *workers
	scale.Seed = *seed
	scale.CostCachePath = *costCache
	if *costCache != "" && *perfJSON == "" && !*planTrace {
		fmt.Fprintln(os.Stderr, "benchrunner: -cost-cache feeds the adaptive perf cases; it requires -perf-json or -plan-trace")
		os.Exit(1)
	}
	if *quick {
		// Quick mode keeps its reduced sizes unless explicitly overridden.
		if !flagPassed("rmat-scale") {
			scale.RMATScale = bench.Quick.RMATScale
		}
		if !flagPassed("twitter-scale") {
			scale.TwitterScale = bench.Quick.TwitterScale
		}
		if !flagPassed("road-side") {
			scale.RoadWidth, scale.RoadHeight = bench.Quick.RoadWidth, bench.Quick.RoadHeight
		}
		if !flagPassed("pagerank-iterations") {
			scale.PagerankIterations = bench.Quick.PagerankIterations
		}
	}

	if *planTrace {
		// Same default scale rule as the perf suite: the adaptive
		// acceptance configuration is RMAT-scale-16.
		traceScale := scale
		if !flagPassed("rmat-scale") {
			traceScale.RMATScale = 16
		}
		traces, err := bench.PlanTraces(traceScale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: plan trace failed: %v\n", err)
			os.Exit(1)
		}
		for _, tr := range traces {
			fmt.Printf("%-28s %2d iterations  %s\n", tr.Name, tr.Iterations, tr.PlanTrace)
		}
		if *perfJSON == "" {
			return
		}
	}

	if *perfJSON != "" {
		// The perf trajectory defaults to RMAT-scale-16 (the acceptance
		// benchmark of the zero-allocation engine work) unless overridden.
		perfScale := scale
		if !flagPassed("rmat-scale") {
			perfScale.RMATScale = 16
		}
		f, err := os.Create(*perfJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WritePerfJSON(perfScale, f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "benchrunner: perf suite failed: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("perf trajectory written to %s\n", *perfJSON)
		host := fmt.Sprintf("host: %s, GOMAXPROCS=%d", runtime.Version(), runtime.GOMAXPROCS(0))
		if cpu := bench.HostCPUModel(); cpu != "" {
			host += ", cpu=" + cpu
		}
		fmt.Println(host)
		fmt.Printf("numa: %s\n", everythinggraph.NUMATopology())
		return
	}

	var ids []string
	if *experiments == "all" {
		ids = bench.IDs()
	} else {
		ids = strings.Split(*experiments, ",")
	}

	exitCode := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := bench.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q (use -list)\n", id)
			exitCode = 1
			continue
		}
		fmt.Printf("### %s — %s\n\n", e.ID, e.Title)
		if err := e.Run(scale, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: experiment %s failed: %v\n", id, err)
			exitCode = 1
		}
	}
	os.Exit(exitCode)
}

// flagPassed reports whether a flag was explicitly set on the command line.
func flagPassed(name string) bool {
	passed := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			passed = true
		}
	})
	return passed
}
