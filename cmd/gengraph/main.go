// Command gengraph generates the synthetic datasets used by the benchmarks
// (RMAT, Twitter-profile, road lattice, bipartite rating graph) and writes
// them as text or binary edge lists, so that the same inputs can be fed to
// other graph systems for external comparison.
//
// Examples:
//
//	gengraph -kind rmat -scale 22 -o rmat22.bin -format binary
//	gengraph -kind road -side 1024 -o road.txt
//	gengraph -kind bipartite -users 100000 -items 5000 -o ratings.txt
package main

import (
	"flag"
	"fmt"
	"os"

	everythinggraph "github.com/epfl-repro/everythinggraph"
)

func main() {
	var (
		kind    = flag.String("kind", "rmat", "rmat | twitter | road | bipartite")
		scale   = flag.Int("scale", 20, "log2 of the vertex count (rmat, twitter)")
		factor  = flag.Int("edge-factor", 16, "edges per vertex (rmat)")
		side    = flag.Int("side", 512, "lattice side length (road)")
		users   = flag.Int("users", 60000, "user count (bipartite)")
		items   = flag.Int("items", 4000, "item count (bipartite)")
		ratings = flag.Int("ratings", 32, "average ratings per user (bipartite)")
		seed    = flag.Int64("seed", 42, "generator seed")
		out     = flag.String("o", "", "output file (default stdout)")
		format  = flag.String("format", "text", "text | binary")
	)
	flag.Parse()

	var g *everythinggraph.Graph
	switch *kind {
	case "rmat":
		g = everythinggraph.GenerateRMAT(*scale, *factor, *seed)
	case "twitter":
		g = everythinggraph.GenerateTwitterProfile(*scale, *seed)
	case "road":
		g = everythinggraph.GenerateRoad(*side, *side, *seed)
	case "bipartite":
		g = everythinggraph.GenerateBipartite(*users, *items, *ratings, *seed)
	default:
		fmt.Fprintf(os.Stderr, "gengraph: unknown kind %q\n", *kind)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	var err error
	if *format == "binary" {
		err = g.WriteBinary(w)
	} else {
		err = g.WriteText(w)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "gengraph: wrote %d vertices, %d edges (%s, %s)\n",
		g.NumVertices(), g.NumEdges(), *kind, *format)
}
