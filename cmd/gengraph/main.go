// Command gengraph generates the synthetic datasets used by the benchmarks
// (RMAT, Twitter-profile, road lattice, bipartite rating graph) and writes
// them as text or binary edge lists — or as an out-of-core partitioned grid
// store — so that the same inputs can be fed to other graph systems for
// external comparison or streamed by egraph -store.
//
// RMAT and Twitter-profile graphs are generated in bounded chunks and
// written as they are produced, so a scale-24+ dataset streams to disk
// without ever materializing its edge slice in memory. The lattice and
// bipartite generators build in memory (their practical sizes are small).
//
// Examples:
//
//	gengraph -kind rmat -scale 22 -o rmat22.bin -format binary
//	gengraph -kind rmat -scale 20 -o rmat20.egs -format store -p 256
//	gengraph -kind rmat -scale 20 -o rmat20u.egs -format store -undirected
//	gengraph -kind rmat -scale 20 -o rmat20c.egs -format store -compress
//	gengraph -kind road -side 1024 -o road.txt
//	gengraph -kind bipartite -users 100000 -items 5000 -o ratings.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/epfl-repro/everythinggraph/internal/gen"
	"github.com/epfl-repro/everythinggraph/internal/graph"
	"github.com/epfl-repro/everythinggraph/internal/oocore"
	"github.com/epfl-repro/everythinggraph/internal/storage"
)

func main() {
	var (
		kind       = flag.String("kind", "rmat", "rmat | twitter | road | bipartite")
		scale      = flag.Int("scale", 20, "log2 of the vertex count (rmat, twitter)")
		factor     = flag.Int("edge-factor", 16, "edges per vertex (rmat)")
		side       = flag.Int("side", 512, "lattice side length (road)")
		users      = flag.Int("users", 60000, "user count (bipartite)")
		items      = flag.Int("items", 4000, "item count (bipartite)")
		ratings    = flag.Int("ratings", 32, "average ratings per user (bipartite)")
		seed       = flag.Int64("seed", 42, "generator seed")
		out        = flag.String("o", "", "output file (default stdout; required for -format store)")
		format     = flag.String("format", "text", "text | binary | store (partitioned grid store)")
		gridP      = flag.Int("p", 0, "grid dimension for -format store (0 = paper's 256, clamped)")
		undirected = flag.Bool("undirected", false, "mirror each edge into the store (store format only; required by WCC)")
		compress   = flag.Bool("compress", false, "write a version-2 store with delta+varint-compressed cell segments (store format only)")
	)
	flag.Parse()

	stream, numVertices, err := makeStream(*kind, *scale, *factor, *side, *users, *items, *ratings, *seed)
	if err != nil {
		fatal(err)
	}

	switch *format {
	case "store":
		if *out == "" {
			fatal(fmt.Errorf("-format store requires -o (stores are random-access files)"))
		}
		h, err := oocore.BuildStore(*out, oocore.BuildOptions{
			NumVertices: numVertices,
			GridP:       *gridP,
			Undirected:  *undirected,
			Compressed:  *compress,
		}, stream)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gengraph: wrote %d vertices, %d stored edges (%s, %dx%d grid store, format v%d)\n",
			h.NumVertices, h.NumEdges, *kind, h.P, h.P, h.Version)
	case "text", "binary":
		if *undirected {
			fatal(fmt.Errorf("-undirected applies only to -format store (edge lists record each edge once)"))
		}
		if *compress {
			fatal(fmt.Errorf("-compress applies only to -format store (see graphstats -store for ratios)"))
		}
		w := io.Writer(os.Stdout)
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		numEdges, err := writeStreamed(w, *format, stream)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gengraph: wrote %d vertices, %d edges (%s, %s)\n",
			numVertices, numEdges, *kind, *format)
	default:
		fatal(fmt.Errorf("unknown format %q (text | binary | store)", *format))
	}
}

// makeStream returns a restartable edge stream for the dataset plus its
// vertex count. RMAT-family graphs stream chunk by chunk; the small
// lattice/bipartite generators materialize once and stream the slice.
func makeStream(kind string, scale, factor, side, users, items, ratings int, seed int64) (oocore.Stream, int, error) {
	switch kind {
	case "rmat":
		opt := gen.RMATOptions{Scale: scale, EdgeFactor: factor, Seed: seed}
		return func(yield func([]graph.Edge) error) error {
			return gen.StreamRMAT(opt, yield)
		}, 1 << scale, nil
	case "twitter":
		opt := gen.TwitterProfileOptions{Scale: scale, Seed: seed}
		return func(yield func([]graph.Edge) error) error {
			return gen.StreamTwitterProfile(opt, yield)
		}, 1 << scale, nil
	case "road":
		g := gen.Road(gen.RoadOptions{Width: side, Height: side, ShortcutFraction: 0.05, Seed: seed, Weighted: true})
		return oocore.SliceStream(g.EdgeArray.Edges, 0), g.NumVertices(), nil
	case "bipartite":
		g := gen.Bipartite(gen.BipartiteOptions{Users: users, Items: items, RatingsPerUser: ratings, Seed: seed})
		return oocore.SliceStream(g.EdgeArray.Edges, 0), g.NumVertices(), nil
	default:
		return nil, 0, fmt.Errorf("unknown kind %q", kind)
	}
}

// edgeWriter is the incremental encoder shared by the text and binary
// streaming paths.
type edgeWriter interface {
	Write(edges []graph.Edge) error
	Flush() error
}

// writeStreamed writes the stream as a text or binary edge list, one
// bounded chunk at a time through a single reused buffer, and returns the
// edge count.
func writeStreamed(w io.Writer, format string, stream oocore.Stream) (int64, error) {
	var ew edgeWriter
	if format == "text" {
		ew = storage.NewTextWriter(w)
	} else {
		ew = storage.NewBinaryWriter(w)
	}
	var n int64
	err := stream(func(chunk []graph.Edge) error {
		n += int64(len(chunk))
		return ew.Write(chunk)
	})
	if err != nil {
		return n, err
	}
	return n, ew.Flush()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
	os.Exit(1)
}
