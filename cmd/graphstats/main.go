// Command graphstats prints the structural profile of a graph (degree
// distribution, skew, estimated diameter, connectivity) for either a
// generated dataset or an edge-list file. It documents that the generated
// stand-ins used by the benchmarks have the structural properties the paper
// relies on: power-law skew for RMAT/Twitter, high diameter and low degree
// for the road graph, popularity skew for the rating graph.
//
// With -store it instead profiles an on-disk partitioned grid store
// (gengraph -format store): the decoded header, the per-cell segment-size
// histogram, and — for compressed (version-2) stores — the overall and
// per-row compression ratios against the 12-byte raw edge record.
//
// Examples:
//
//	graphstats -generate rmat -scale 20
//	graphstats -generate road -side 1024
//	graphstats -input edges.txt
//	graphstats -store rmat20c.egs
package main

import (
	"flag"
	"fmt"
	"math/bits"
	"os"
	"runtime"

	everythinggraph "github.com/epfl-repro/everythinggraph"
	"github.com/epfl-repro/everythinggraph/internal/core"
	"github.com/epfl-repro/everythinggraph/internal/oocore"
	"github.com/epfl-repro/everythinggraph/internal/stats"
)

// formatMiB renders a byte count in the unit that keeps it readable: whole
// MiB when it divides exactly, KiB otherwise (coalesced reads are usually
// well under a mebibyte).
func formatMiB(n int64) string {
	if n >= 1<<20 && n%(1<<20) == 0 {
		return fmt.Sprintf("%dMiB", n>>20)
	}
	return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
}

func main() {
	var (
		generate  = flag.String("generate", "rmat", "rmat | twitter | road | bipartite (ignored when -input is given)")
		input     = flag.String("input", "", "edge-list file to analyze instead of generating")
		format    = flag.String("format", "text", "input format: text | binary")
		directed  = flag.Bool("directed", true, "treat the input file as directed")
		scale     = flag.Int("scale", 18, "log2 of the vertex count for generated graphs")
		side      = flag.Int("side", 512, "lattice side for the road generator")
		users     = flag.Int("users", 60000, "user count for the bipartite generator")
		items     = flag.Int("items", 4000, "item count for the bipartite generator")
		seed      = flag.Int64("seed", 42, "generator seed")
		histogram = flag.Bool("histogram", false, "also print the log2 out-degree histogram")
		storePath = flag.String("store", "", "profile this partitioned grid store (.egs) instead of a graph")
	)
	flag.Parse()

	// The host's NUMA topology frames every profile: it is what the
	// engine's placement planner discovers and pins against (one synthetic
	// node on non-NUMA and non-Linux hosts).
	fmt.Printf("host: numa %s\n", everythinggraph.NUMATopology())

	if *storePath != "" {
		if err := storeStats(*storePath); err != nil {
			fmt.Fprintf(os.Stderr, "graphstats: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var g *everythinggraph.Graph
	var err error
	if *input != "" {
		var f *os.File
		f, err = os.Open(*input)
		if err == nil {
			defer f.Close()
			if *format == "binary" {
				g, err = everythinggraph.LoadBinary(f, *directed)
			} else {
				g, err = everythinggraph.LoadText(f, *directed)
			}
		}
	} else {
		switch *generate {
		case "rmat":
			g = everythinggraph.GenerateRMAT(*scale, 16, *seed)
		case "twitter":
			g = everythinggraph.GenerateTwitterProfile(*scale, *seed)
		case "road":
			g = everythinggraph.GenerateRoad(*side, *side, *seed)
		case "bipartite":
			g = everythinggraph.GenerateBipartite(*users, *items, 32, *seed)
		default:
			err = fmt.Errorf("unknown generator %q", *generate)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphstats: %v\n", err)
		os.Exit(1)
	}

	summary := stats.Summarize(g.Internal())
	fmt.Print(summary.String())
	if *histogram {
		fmt.Println("out-degree histogram (log2 buckets):")
		for b, c := range stats.DegreeHistogram(g.Internal().EdgeArray.OutDegrees()) {
			if c == 0 {
				continue
			}
			fmt.Printf("  2^%-2d %d\n", b, c)
		}
	}
}

// storeStats prints the profile of an on-disk partitioned grid store: the
// decoded header, the per-cell stored-size histogram, and the compression
// accounting of version-2 stores.
func storeStats(path string) error {
	s, err := oocore.Open(path)
	if err != nil {
		return err
	}
	defer s.Close()

	h := s.Header()
	kind := "fixed 12-byte records"
	if s.Compressed() {
		kind = "delta+varint compressed cells"
	}
	fmt.Printf("store: %s\n", path)
	fmt.Printf("format: version %d (%s)\n", h.Version, kind)
	fmt.Printf("graph: %d vertices, %d stored edges, %dx%d grid (range %d)\n",
		h.NumVertices, h.NumEdges, h.P, h.P, h.RangeSize)
	fmt.Printf("edges: undirected(mirrored)=%v", h.Undirected)
	if s.Compressed() {
		fmt.Printf(" weight-plane=%v", h.Weighted)
	}
	fmt.Println()

	// Per-cell stored-size histogram in log2-byte buckets, plus per-row
	// stored-byte totals for the row ratios below.
	numCells := h.P * h.P
	var sizeBuckets [64]int64
	empty := int64(0)
	rowBytes := make([]int64, h.P)
	rowEdges := make([]int64, h.P)
	var stored int64
	for cell := 0; cell < numCells; cell++ {
		b := s.CellStoredBytes(cell)
		stored += b
		rowBytes[cell/h.P] += b
		rowEdges[cell/h.P] += s.CellEdges(cell)
		if b == 0 {
			empty++
			continue
		}
		sizeBuckets[bits.Len64(uint64(b))-1]++
	}
	fmt.Printf("cells: %d total, %d empty\n", numCells, empty)
	fmt.Println("cell stored-size histogram (log2-byte buckets):")
	for b, c := range sizeBuckets {
		if c == 0 {
			continue
		}
		fmt.Printf("  2^%-2d %d\n", b, c)
	}

	// Per-level coalescing profile: what one streamed pass costs at every
	// rung of the store's virtual coarsening ladder. The bytes column is
	// level-invariant (coarsening merges reads, it never fetches more);
	// the read count and mean coalesced read size are what change — a
	// store whose finest level shows many tiny reads while a coarse level
	// shows few large ones is over-partitioned, and `egsrepack -p` at the
	// winning level (or letting `-flow auto` stream coarser) fixes it.
	fmt.Printf("virtual level profile (%d workers, %s budget):\n",
		runtime.NumCPU(), formatMiB(core.DefaultStreamMemoryBudget))
	fmt.Printf("  %6s %7s %8s %10s %12s %12s %13s\n",
		"P", "factor", "workers", "reads", "mean-read", "read-MiB", "decode-MiB")
	for _, lp := range s.LevelProfiles(runtime.NumCPU(), core.DefaultStreamMemoryBudget) {
		meanRead := "-"
		if lp.Reads > 0 {
			meanRead = formatMiB(lp.ReadBytes / lp.Reads)
		}
		fmt.Printf("  %6d %7d %8d %10d %12s %12.1f %13.1f\n",
			lp.P, lp.Factor, lp.Workers, lp.Reads, meanRead,
			float64(lp.ReadBytes)/(1<<20), float64(lp.DecodeBytes)/(1<<20))
	}

	if !s.Compressed() || stored == 0 {
		return nil
	}
	// Raw footprint is the version-1 record format: 12 bytes per stored
	// edge. The per-row spread shows where the delta encoding bites —
	// low-numbered rows hold the hub sources of skewed graphs, whose dense
	// cells yield short deltas.
	raw := h.NumEdges * 12
	fmt.Printf("compression: %.2fx overall (%.1f MiB raw -> %.1f MiB stored)\n",
		float64(raw)/float64(stored), float64(raw)/(1<<20), float64(stored)/(1<<20))
	fmt.Println("per-row compression ratio:")
	for r := 0; r < h.P; r++ {
		if rowEdges[r] == 0 {
			continue
		}
		fmt.Printf("  row %3d: %8d edges  %.2fx\n", r, rowEdges[r], float64(rowEdges[r]*12)/float64(rowBytes[r]))
	}
	return nil
}
