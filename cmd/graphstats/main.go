// Command graphstats prints the structural profile of a graph (degree
// distribution, skew, estimated diameter, connectivity) for either a
// generated dataset or an edge-list file. It documents that the generated
// stand-ins used by the benchmarks have the structural properties the paper
// relies on: power-law skew for RMAT/Twitter, high diameter and low degree
// for the road graph, popularity skew for the rating graph.
//
// Examples:
//
//	graphstats -generate rmat -scale 20
//	graphstats -generate road -side 1024
//	graphstats -input edges.txt
package main

import (
	"flag"
	"fmt"
	"os"

	everythinggraph "github.com/epfl-repro/everythinggraph"
	"github.com/epfl-repro/everythinggraph/internal/stats"
)

func main() {
	var (
		generate  = flag.String("generate", "rmat", "rmat | twitter | road | bipartite (ignored when -input is given)")
		input     = flag.String("input", "", "edge-list file to analyze instead of generating")
		format    = flag.String("format", "text", "input format: text | binary")
		directed  = flag.Bool("directed", true, "treat the input file as directed")
		scale     = flag.Int("scale", 18, "log2 of the vertex count for generated graphs")
		side      = flag.Int("side", 512, "lattice side for the road generator")
		users     = flag.Int("users", 60000, "user count for the bipartite generator")
		items     = flag.Int("items", 4000, "item count for the bipartite generator")
		seed      = flag.Int64("seed", 42, "generator seed")
		histogram = flag.Bool("histogram", false, "also print the log2 out-degree histogram")
	)
	flag.Parse()

	var g *everythinggraph.Graph
	var err error
	if *input != "" {
		var f *os.File
		f, err = os.Open(*input)
		if err == nil {
			defer f.Close()
			if *format == "binary" {
				g, err = everythinggraph.LoadBinary(f, *directed)
			} else {
				g, err = everythinggraph.LoadText(f, *directed)
			}
		}
	} else {
		switch *generate {
		case "rmat":
			g = everythinggraph.GenerateRMAT(*scale, 16, *seed)
		case "twitter":
			g = everythinggraph.GenerateTwitterProfile(*scale, *seed)
		case "road":
			g = everythinggraph.GenerateRoad(*side, *side, *seed)
		case "bipartite":
			g = everythinggraph.GenerateBipartite(*users, *items, 32, *seed)
		default:
			err = fmt.Errorf("unknown generator %q", *generate)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphstats: %v\n", err)
		os.Exit(1)
	}

	summary := stats.Summarize(g.Internal())
	fmt.Print(summary.String())
	if *histogram {
		fmt.Println("out-degree histogram (log2 buckets):")
		for b, c := range stats.DegreeHistogram(g.Internal().EdgeArray.OutDegrees()) {
			if c == 0 {
				continue
			}
			fmt.Printf("  2^%-2d %d\n", b, c)
		}
	}
}
