// Command egsrepack rewrites a partitioned grid store (.egs) at a different
// resolution and/or format — the offline answer to a store the planner keeps
// streaming at a coarser virtual level. Virtual coarsening makes an
// over-partitioned store cheap to read without touching the file; repacking
// makes the fix permanent: the winning level becomes the store's physical P,
// every pass reads whole cells with no merge bookkeeping, and the metadata
// (cell index, per-cell CRCs) shrinks by the squared factor.
//
// The target level can be given explicitly (-p, which must be a rung of the
// store's virtual ladder) or chosen from measured costs (-cost-cache): the
// cache written by `egraph -cost-cache` keys each streamed plan by its
// resolution ("grid/64@s1/push/no-lock"), so the level real runs measured
// cheapest is picked, not a modeled guess. With neither, the store is
// re-encoded at its own resolution (a format-only repack).
//
// Output is always CRC-verified by reopening, and results are bit-identical
// to the source at any ladder level (see oocore.Repartition).
//
// Examples:
//
//	egsrepack -in rmat20.egs -out rmat20.p64.egs -p 64
//	egsrepack -in rmat20.egs -out rmat20.best.egs -cost-cache costs.json
//	egsrepack -in rmat20.egs -out rmat20c.egs -format v2
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/epfl-repro/everythinggraph/internal/costcache"
	"github.com/epfl-repro/everythinggraph/internal/oocore"
)

func main() {
	var (
		in        = flag.String("in", "", "source store (.egs) to repack (required)")
		out       = flag.String("out", "", "output store path (required)")
		targetP   = flag.Int("p", 0, "target grid dimension; must be a rung of the source's virtual ladder (0 = choose via -cost-cache, else keep)")
		format    = flag.String("format", "keep", "output format: keep | v1 | v2 (v2 = compressed segments)")
		cachePath = flag.String("cost-cache", "", "pick the target level with the lowest measured streamed cost for this store")
	)
	flag.Parse()
	if err := run(*in, *out, *targetP, *format, *cachePath); err != nil {
		fmt.Fprintf(os.Stderr, "egsrepack: %v\n", err)
		os.Exit(1)
	}
}

func run(in, out string, targetP int, format, cachePath string) error {
	if in == "" || out == "" {
		return fmt.Errorf("both -in and -out are required")
	}
	src, err := oocore.Open(in)
	if err != nil {
		return err
	}
	defer src.Close()

	compressed := src.Compressed()
	switch format {
	case "keep":
	case "v1":
		compressed = false
	case "v2":
		compressed = true
	default:
		return fmt.Errorf("unknown -format %q (keep | v1 | v2)", format)
	}

	how := "keeping source resolution"
	if targetP == 0 && cachePath != "" {
		best, cost, err := bestMeasuredLevel(cachePath, in)
		if err != nil {
			return err
		}
		if best == 0 {
			return fmt.Errorf("cost cache %s has no streamed measurements for %s — run `egraph -source %s -flow auto -cost-cache %s` first", cachePath, in, in, cachePath)
		}
		targetP, how = best, fmt.Sprintf("measured cheapest at %.1f ns/edge", cost)
	} else if targetP != 0 {
		how = "requested"
	}
	if targetP == 0 {
		targetP = src.GridP()
	}

	h, err := oocore.Repartition(src, out, targetP, compressed)
	if err != nil {
		return err
	}
	fmtName := "v1 records"
	if compressed {
		fmtName = "v2 compressed"
	}
	fmt.Printf("repacked %s (P=%d) -> %s (P=%d, %s): %d vertices, %d edges (%s)\n",
		in, src.GridP(), out, h.P, fmtName, h.NumVertices, h.NumEdges, how)
	return nil
}

// bestMeasuredLevel scans the cost cache for streamed plan measurements of
// this store — entries whose dataset part matches the file (base name
// qualified by size, as costcache.Key writes it) and whose plan label
// carries the "@s" stream provenance — and returns the resolution with the
// lowest measured ns/edge across algorithms and flows. Zero means the cache
// holds nothing for this store.
func bestMeasuredLevel(cachePath, storePath string) (bestP int, bestCost float64, err error) {
	f, err := costcache.Load(cachePath)
	if err != nil {
		return 0, 0, err
	}
	dataset := filepath.Base(storePath)
	if info, err := os.Stat(storePath); err == nil {
		dataset = fmt.Sprintf("%s#%d", dataset, info.Size())
	}
	for graphKey, plans := range f.Graphs {
		if _, ds, ok := strings.Cut(graphKey, "@"); !ok || ds != dataset {
			continue
		}
		for label, cost := range plans {
			p, ok := streamedLabelP(label)
			if !ok || cost <= 0 {
				continue
			}
			if bestP == 0 || cost < bestCost {
				bestP, bestCost = p, cost
			}
		}
	}
	return bestP, bestCost, nil
}

// streamedLabelP extracts the resolution from a streamed plan label such as
// "grid/64@s1/push/no-lock" or "compressed/256@s2/pull/no-lock". Labels
// without the "@s" provenance (in-memory plans, pre-stream cache entries)
// report false.
func streamedLabelP(label string) (int, bool) {
	parts := strings.Split(label, "/")
	if len(parts) < 2 || !strings.Contains(parts[1], "@s") {
		return 0, false
	}
	var p, format int
	if n, err := fmt.Sscanf(parts[1], "%d@s%d", &p, &format); err != nil || n != 2 || p <= 0 {
		return 0, false
	}
	return p, true
}
