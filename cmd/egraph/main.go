// Command egraph runs a single graph algorithm with a chosen combination of
// techniques (layout, pre-processing method, information flow,
// synchronization) and prints the end-to-end time breakdown — the
// command-line face of the library's public API.
//
// With -store it instead executes out-of-core over a partitioned grid store
// written by gengraph -format store: cells stream from disk through a
// bounded memory budget while the next segments prefetch asynchronously,
// and the breakdown additionally reports how much time stalled on storage
// versus how much storage time the overlap hid.
//
// Examples:
//
//	egraph -algorithm bfs -generate rmat -scale 20 -layout adjacency -flow push -sync atomics
//	egraph -algorithm bfs -generate rmat -scale 20 -flow auto -v
//	egraph -algorithm bfs -generate rmat -scale 20 -flow auto -placement pinned -v
//	egraph -algorithm bfs -generate rmat -scale 20 -sources 0,7,19,42 -flow auto
//	egraph -algorithm pagerank -generate rmat -scale 16 -layout grid -p 256 -flow auto -v
//	egraph -algorithm pagerank -generate twitter -scale 20 -layout grid -flow pull -sync nolock
//	egraph -algorithm sssp -input edges.txt -format text -layout adjacency
//	egraph -algorithm wcc -generate road -scale 9 -layout edgearray
//	egraph -algorithm pagerank -store rmat20.egs -membudget 64 -prefetch 4
//	egraph -algorithm wcc -store rmat20u.egs -store-device ssd
//	egraph -algorithm pagerank -store rmat20.egs -flow auto -cost-cache costs.json
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	everythinggraph "github.com/epfl-repro/everythinggraph"
	"github.com/epfl-repro/everythinggraph/internal/costcache"
	"github.com/epfl-repro/everythinggraph/internal/metrics"
)

func main() {
	var (
		algorithm = flag.String("algorithm", "bfs", "bfs | pagerank | wcc | sssp | spmv | als")
		generate  = flag.String("generate", "rmat", "rmat | twitter | road | bipartite (ignored when -input is given)")
		input     = flag.String("input", "", "edge-list file to load instead of generating")
		format    = flag.String("format", "text", "input format: text | binary")
		directed  = flag.Bool("directed", true, "treat the input file as directed")
		scale     = flag.Int("scale", 18, "log2 of the vertex count for generated graphs")
		seed      = flag.Int64("seed", 42, "generator seed")
		layoutF   = flag.String("layout", "adjacency", "edgearray | adjacency | adjacency-sorted | grid | grid-compressed")
		flowF     = flag.String("flow", "push", "push | pull | pushpull | auto (adaptive planner)")
		syncF     = flag.String("sync", "atomics", "locks | atomics | nolock")
		prepF     = flag.String("prep", "radix", "dynamic | count | radix")
		gridP     = flag.Int("p", 0, "grid dimension for -layout grid (0 = paper's 256, clamped for small graphs and oversized requests)")
		gridLvls  = flag.Int("grid-levels", 0, "grid-resolution policy over the grid pyramid: with -flow auto, consider the finest N levels (0 = all); with -layout grid and a static flow, pin the N-th level (1 = materialized P, 2 = P/2, ...)")
		source    = flag.Uint("source", 0, "source vertex for bfs/sssp")
		sourcesF  = flag.String("sources", "", "comma-separated source vertices for a multi-source batched run (bfs and sssp only, in-memory): queries are packed into bit-parallel 64-wide sweeps, extra groups run concurrently on worker-pool leases; overrides -source")
		prIters   = flag.Int("pagerank-iterations", 10, "PageRank iteration count")
		workers   = flag.Int("workers", 0, "worker count (0 = all CPUs)")
		leaseN    = flag.Int("lease", 0, "run on a worker-pool lease of up to this many workers (the concurrent-query serving mode; 0 = the shared pool)")
		placeF    = flag.String("placement", "auto", "NUMA placement policy for in-memory runs: auto (planner-chosen socket pinning) | interleaved | pinned; degrades to interleaved on single-node hosts")
		storePath = flag.String("store", "", "run out-of-core over this partitioned grid store (see gengraph -format store)")
		memBudget = flag.Int64("membudget", 0, "resident edge-buffer budget in MiB for -store runs (0 = 256); -flow auto plans the working budget per iteration under this ceiling")
		prefetch  = flag.Int("prefetch", 0, "per-worker prefetch depth for -store runs (0 = 2); -flow auto adapts it per iteration from the measured I/O wait")
		storeDev  = flag.String("store-device", "none", "virtual device pacing for -store runs: none | ssd | hdd")
		costCache = flag.String("cost-cache", "", "JSON cost cache for -flow auto: seed the planner's cost model with this dataset's measured per-edge plan costs and append this run's measurements")
		traceOut  = flag.String("trace", "", "write a Chrome/Perfetto trace-event JSON file of the run (iteration spans, planner decisions, fetch and stall events; open in chrome://tracing or ui.perfetto.dev)")
		metricsO  = flag.String("metrics-out", "", "write the run's flat counters-and-histograms snapshot as JSON")
		verbose   = flag.Bool("v", false, "print per-iteration statistics")
	)
	flag.Parse()

	cfg := everythinggraph.Config{Workers: *workers, GridP: *gridP, GridLevels: *gridLvls, MemoryBudget: *memBudget << 20, PrefetchDepth: *prefetch}
	if *leaseN > 0 {
		lease := everythinggraph.NewLease(*leaseN)
		defer lease.Release()
		cfg.Lease = lease
	}
	var err error
	if cfg.Layout, err = parseLayout(*layoutF); err != nil {
		fatal(err)
	}
	if cfg.Flow, err = parseFlow(*flowF); err != nil {
		fatal(err)
	}
	if cfg.Sync, err = parseSync(*syncF); err != nil {
		fatal(err)
	}
	if cfg.Prep, err = parsePrep(*prepF); err != nil {
		fatal(err)
	}
	if cfg.Placement, err = parsePlacement(*placeF); err != nil {
		fatal(err)
	}
	if *storePath == "" {
		// Reject impossible technique combinations before paying for
		// generation, loading or pre-processing.
		if err := everythinggraph.ValidateTechniques(cfg.Layout, cfg.Flow, cfg.Sync); err != nil {
			fatal(err)
		}
	}
	batchSources, err := parseSources(*sourcesF)
	if err != nil {
		fatal(err)
	}
	if len(batchSources) > 0 {
		// Fail fast, like the technique validation above: batching merges
		// identical sweeps, which only the traversal algorithms have.
		if *algorithm != "bfs" && *algorithm != "sssp" {
			fatal(fmt.Errorf("-sources batches identical traversals; it requires -algorithm bfs or sssp (got %q)", *algorithm))
		}
		if *storePath != "" {
			fatal(fmt.Errorf("-sources runs batches in memory; it cannot be combined with -store"))
		}
	}

	// The cost cache keys runs by algorithm plus dataset — file name
	// (stores, edge lists) or generator and scale; the store path wins
	// because a store run never touches the generator flags.
	datasetPath := *storePath
	if datasetPath == "" {
		datasetPath = *input
	}
	graphKey := costcache.Key(*algorithm, datasetPath, *generate, *scale)
	cache := loadCostPriors(*costCache, graphKey, &cfg)

	if *traceOut != "" || *metricsO != "" {
		cfg.Trace = everythinggraph.NewTraceRecorder(0)
	}

	if *storePath != "" {
		res := runStore(*storePath, *algorithm, cfg, *storeDev, everythinggraph.VertexID(*source), *prIters, *verbose)
		writeTraceOutputs(cfg.Trace, *traceOut, *metricsO)
		saveCostMeasurements(cache, *costCache, graphKey, res.Run.PlanCosts)
		return
	}

	g, users, err := buildGraph(*input, *format, *directed, *generate, *scale, *seed)
	if err != nil {
		fatal(err)
	}

	if len(batchSources) > 0 {
		results := runBatch(g, *algorithm, batchSources, cfg, *verbose)
		writeTraceOutputs(cfg.Trace, *traceOut, *metricsO)
		saveCostMeasurements(cache, *costCache, graphKey, results[0].Run.PlanCosts)
		return
	}

	alg, err := makeAlgorithm(*algorithm, everythinggraph.VertexID(*source), *prIters, users, g)
	if err != nil {
		fatal(err)
	}
	if *algorithm == "wcc" {
		undirected := true
		cfg.Undirected = &undirected
	}

	res, err := g.Run(alg, cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("configuration: layout=%v flow=%v sync=%v prep=%v placement=%v\n", cfg.Layout, cfg.Flow, cfg.Sync, cfg.Prep, cfg.Placement)
	fmt.Printf("algorithm: %s, %d iterations\n", res.Run.Algorithm, res.Run.Iterations)
	fmt.Printf("breakdown: %s\n", res.Breakdown)
	if cfg.Flow == everythinggraph.FlowAuto {
		fmt.Printf("plan trace: %s\n", metrics.CompressPlanTrace(res.Run.PlanTrace()))
	}
	printPlacement(res.Run.PerIteration, *verbose)
	printIterations(res.Run.PerIteration, *verbose)
	printAlgorithmSummary(alg)
	writeTraceOutputs(cfg.Trace, *traceOut, *metricsO)
	saveCostMeasurements(cache, *costCache, graphKey, res.Run.PlanCosts)
}

// writeTraceOutputs exports the run recorder: a Chrome trace-event file, a
// flat metrics snapshot, or both.
func writeTraceOutputs(rec *everythinggraph.TraceRecorder, tracePath, metricsPath string) {
	if rec == nil {
		return
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: wrote %d events to %s (%d dropped)\n", rec.Len(), tracePath, rec.Dropped())
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			fatal(err)
		}
		if err := rec.Snapshot().WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics: wrote snapshot to %s\n", metricsPath)
	}
}

// loadCostPriors opens the cost cache (when configured) and seeds the
// config's cost model with the dataset's cached measurements. Only the
// adaptive planner consumes them, so the flag demands -flow auto instead of
// being silently ignored.
func loadCostPriors(path, graphKey string, cfg *everythinggraph.Config) *costcache.File {
	if path == "" {
		return nil
	}
	if cfg.Flow != everythinggraph.FlowAuto {
		fatal(fmt.Errorf("-cost-cache feeds the adaptive planner; it requires -flow auto"))
	}
	cache, err := costcache.Load(path)
	if err != nil {
		fatal(err)
	}
	if priors := cache.Priors(graphKey); len(priors) > 0 {
		cfg.CostPriors = priors
		fmt.Printf("cost cache: seeded %d measured plan costs for %s\n", len(priors), graphKey)
	}
	return cache
}

// saveCostMeasurements merges a run's measured plan costs into the cache
// and writes it back.
func saveCostMeasurements(cache *costcache.File, path, graphKey string, costs map[string]float64) {
	if cache == nil || len(costs) == 0 {
		return
	}
	cache.Record(graphKey, costs)
	if err := cache.Save(path); err != nil {
		fatal(err)
	}
	fmt.Printf("cost cache: recorded %d measured plan costs for %s\n", len(costs), graphKey)
}

// parseSources parses the -sources list into vertex ids.
func parseSources(s string) ([]everythinggraph.VertexID, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]everythinggraph.VertexID, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("invalid source %q in -sources", p)
		}
		out = append(out, everythinggraph.VertexID(v))
	}
	return out, nil
}

// runBatch answers the -sources queries in one batched multi-source run and
// prints a per-batch summary (per-source lines with -v).
func runBatch(g *everythinggraph.Graph, algorithm string, sources []everythinggraph.VertexID, cfg everythinggraph.Config, verbose bool) []everythinggraph.BatchSourceResult {
	kind := everythinggraph.BatchBFS
	if algorithm == "sssp" {
		kind = everythinggraph.BatchSSSP
	}
	results, err := g.Batch(kind, sources, cfg)
	if err != nil {
		fatal(err)
	}

	groups := (len(sources) + 63) / 64
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("configuration: layout=%v flow=%v sync=%v prep=%v placement=%v\n", cfg.Layout, cfg.Flow, cfg.Sync, cfg.Prep, cfg.Placement)
	fmt.Printf("batch: %s over %d sources in %d bit-parallel group(s)\n", algorithm, len(sources), groups)
	if cfg.Flow == everythinggraph.FlowAuto {
		fmt.Printf("plan trace: %s\n", metrics.CompressPlanTrace(results[0].Run.PlanTrace()))
	}
	printPlacement(results[0].Run.PerIteration, verbose)
	totalReached := 0
	for _, r := range results {
		reached := 0
		for v := range r.Level {
			if r.Level[v] >= 0 {
				reached++
			}
		}
		for v := range r.Dist {
			if !isInf32(r.Dist[v]) {
				reached++
			}
		}
		totalReached += reached
		if verbose {
			fmt.Printf("  source %9d: reached %d\n", r.Source, reached)
		}
	}
	fmt.Printf("result: %.1f vertices reached per source (avg over %d sources)\n",
		float64(totalReached)/float64(len(sources)), len(sources))
	return results
}

func isInf32(f float32) bool { return math.IsInf(float64(f), 1) }

// runStore executes an algorithm out-of-core over a partitioned grid store.
func runStore(path, algorithm string, cfg everythinggraph.Config, device string, source everythinggraph.VertexID, prIters int, verbose bool) *everythinggraph.Result {
	st, err := everythinggraph.OpenStore(path)
	if err != nil {
		fatal(err)
	}
	defer st.Close()

	switch device {
	case "none", "":
	case "ssd":
		st.SetDevice(everythinggraph.DeviceSSD, true)
	case "hdd":
		st.SetDevice(everythinggraph.DeviceHDD, true)
	default:
		fatal(fmt.Errorf("unknown store device %q (none | ssd | hdd)", device))
	}

	if algorithm == "wcc" && !st.Undirected() {
		fatal(fmt.Errorf("wcc needs mirrored edges, but %s was built without -undirected (rebuild with gengraph -format store -undirected)", path))
	}
	alg, err := makeAlgorithm(algorithm, source, prIters, 0, nil)
	if err != nil {
		fatal(err)
	}

	res, err := st.Run(alg, cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("store: %s, %d vertices, %d stored edges, %dx%d grid\n",
		path, st.NumVertices(), st.NumEdges(), st.GridP(), st.GridP())
	fmt.Printf("configuration: out-of-core flow=%v sync=no-lock device=%s\n", cfg.Flow, device)
	fmt.Printf("algorithm: %s, %d iterations\n", res.Run.Algorithm, res.Run.Iterations)
	fmt.Printf("breakdown: %s\n", res.Breakdown)
	if cfg.Flow == everythinggraph.FlowAuto {
		fmt.Printf("plan trace: %s\n", metrics.CompressPlanTrace(res.Run.PlanTrace()))
	}
	io := st.IOStats()
	fmt.Printf("io: %d reads, %.1f MiB, peak resident %.1f MiB\n",
		io.Reads, float64(io.BytesRead)/(1<<20), float64(io.PeakResidentBytes)/(1<<20))
	printIterations(res.Run.PerIteration, verbose)
	printAlgorithmSummary(alg)
	return res
}

// printPlacement prints the discovered NUMA topology and which placements
// the run's iterations executed under (verbose only): "interleaved ×N" on
// single-node hosts, with "@n<K> ×M" populations once the planner pins.
func printPlacement(iters []everythinggraph.IterationStats, verbose bool) {
	if !verbose {
		return
	}
	counts := make(map[string]int)
	var order []string
	for _, it := range iters {
		k := it.Plan.Placement.String()
		if k == "" {
			k = "interleaved"
		}
		if counts[k] == 0 {
			order = append(order, k)
		}
		counts[k]++
	}
	parts := make([]string, len(order))
	for i, k := range order {
		parts[i] = fmt.Sprintf("%s ×%d", k, counts[k])
	}
	fmt.Printf("numa: %s\n", everythinggraph.NUMATopology())
	fmt.Printf("placement: %s\n", strings.Join(parts, ", "))
}

// printIterations prints the per-iteration table when verbose is set.
func printIterations(iters []everythinggraph.IterationStats, verbose bool) {
	if !verbose {
		return
	}
	for _, it := range iters {
		line := fmt.Sprintf("  iteration %3d: active=%9d plan=%s time=%v",
			it.Iteration, it.ActiveVertices, it.Plan, it.Duration)
		if it.IOWait > 0 {
			line += fmt.Sprintf(" io-wait=%v", it.IOWait)
		}
		fmt.Println(line)
	}
}

// buildGraph loads or generates the dataset. It returns the user count for
// bipartite graphs (needed by ALS).
func buildGraph(input, format string, directed bool, generate string, scale int, seed int64) (*everythinggraph.Graph, int, error) {
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		if format == "binary" {
			g, err := everythinggraph.LoadBinary(f, directed)
			return g, 0, err
		}
		g, err := everythinggraph.LoadText(f, directed)
		return g, 0, err
	}
	switch generate {
	case "rmat":
		return everythinggraph.GenerateRMAT(scale, 16, seed), 0, nil
	case "twitter":
		return everythinggraph.GenerateTwitterProfile(scale, seed), 0, nil
	case "road":
		side := 1 << (scale / 2)
		return everythinggraph.GenerateRoad(side, side, seed), 0, nil
	case "bipartite":
		users := 1 << scale
		return everythinggraph.GenerateBipartite(users, users/16, 32, seed), users, nil
	default:
		return nil, 0, fmt.Errorf("unknown generator %q", generate)
	}
}

func makeAlgorithm(name string, source everythinggraph.VertexID, prIters, users int, g *everythinggraph.Graph) (everythinggraph.Algorithm, error) {
	switch name {
	case "bfs":
		return everythinggraph.BFS(source), nil
	case "pagerank":
		pr := everythinggraph.PageRank()
		pr.Iterations = prIters
		return pr, nil
	case "wcc":
		return everythinggraph.WCC(), nil
	case "sssp":
		return everythinggraph.SSSP(source), nil
	case "spmv":
		return everythinggraph.SpMV(), nil
	case "als":
		if users == 0 {
			if g == nil {
				return nil, fmt.Errorf("als is not supported out-of-core (bipartite stores carry no user count)")
			}
			// Assume the first half of the vertex space is users when the
			// dataset was loaded from a file.
			users = g.NumVertices() / 2
		}
		return everythinggraph.ALS(users), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

// printAlgorithmSummary prints a small algorithm-specific result line.
func printAlgorithmSummary(alg everythinggraph.Algorithm) {
	switch a := alg.(type) {
	case interface{ Reached() int }:
		fmt.Printf("result: %d vertices reached\n", a.Reached())
	case interface{ NumComponents() int }:
		fmt.Printf("result: %d components\n", a.NumComponents())
	case interface{ TotalRank() float64 }:
		fmt.Printf("result: total rank mass %.6f\n", a.TotalRank())
	}
}

func parseLayout(s string) (everythinggraph.Layout, error) {
	switch strings.ToLower(s) {
	case "edgearray", "edge-array", "edge":
		return everythinggraph.LayoutEdgeArray, nil
	case "adjacency", "adj":
		return everythinggraph.LayoutAdjacency, nil
	case "adjacency-sorted", "adj-sorted":
		return everythinggraph.LayoutAdjacencySorted, nil
	case "grid":
		return everythinggraph.LayoutGrid, nil
	case "grid-compressed", "compressed":
		return everythinggraph.LayoutGridCompressed, nil
	default:
		return 0, fmt.Errorf("unknown layout %q", s)
	}
}

func parseFlow(s string) (everythinggraph.Flow, error) {
	switch strings.ToLower(s) {
	case "push":
		return everythinggraph.FlowPush, nil
	case "pull":
		return everythinggraph.FlowPull, nil
	case "pushpull", "push-pull":
		return everythinggraph.FlowPushPull, nil
	case "auto", "adaptive":
		return everythinggraph.FlowAuto, nil
	default:
		return 0, fmt.Errorf("unknown flow %q", s)
	}
}

func parseSync(s string) (everythinggraph.Sync, error) {
	switch strings.ToLower(s) {
	case "locks", "lock":
		return everythinggraph.SyncLocks, nil
	case "atomics", "atomic", "cas":
		return everythinggraph.SyncAtomics, nil
	case "nolock", "no-lock", "partitionfree", "partition-free":
		return everythinggraph.SyncPartitionFree, nil
	default:
		return 0, fmt.Errorf("unknown sync mode %q", s)
	}
}

func parsePlacement(s string) (everythinggraph.Placement, error) {
	switch strings.ToLower(s) {
	case "auto", "":
		return everythinggraph.PlacementAuto, nil
	case "interleaved", "interleave":
		return everythinggraph.PlacementInterleaved, nil
	case "pinned", "pin":
		return everythinggraph.PlacementPinned, nil
	default:
		return 0, fmt.Errorf("unknown placement policy %q (auto | interleaved | pinned)", s)
	}
}

func parsePrep(s string) (everythinggraph.PrepMethod, error) {
	switch strings.ToLower(s) {
	case "dynamic":
		return everythinggraph.PrepDynamic, nil
	case "count", "countsort", "count-sort":
		return everythinggraph.PrepCountSort, nil
	case "radix", "radixsort", "radix-sort":
		return everythinggraph.PrepRadixSort, nil
	default:
		return 0, fmt.Errorf("unknown pre-processing method %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "egraph: %v\n", err)
	os.Exit(1)
}
