package main

import (
	"testing"

	everythinggraph "github.com/epfl-repro/everythinggraph"
)

func TestParseLayout(t *testing.T) {
	cases := map[string]everythinggraph.Layout{
		"edgearray":        everythinggraph.LayoutEdgeArray,
		"edge-array":       everythinggraph.LayoutEdgeArray,
		"adjacency":        everythinggraph.LayoutAdjacency,
		"adj":              everythinggraph.LayoutAdjacency,
		"adjacency-sorted": everythinggraph.LayoutAdjacencySorted,
		"grid":             everythinggraph.LayoutGrid,
		"GRID":             everythinggraph.LayoutGrid,
	}
	for in, want := range cases {
		got, err := parseLayout(in)
		if err != nil || got != want {
			t.Errorf("parseLayout(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseLayout("bogus"); err == nil {
		t.Error("expected error for unknown layout")
	}
}

func TestParseFlow(t *testing.T) {
	cases := map[string]everythinggraph.Flow{
		"push":      everythinggraph.FlowPush,
		"pull":      everythinggraph.FlowPull,
		"pushpull":  everythinggraph.FlowPushPull,
		"push-pull": everythinggraph.FlowPushPull,
		"auto":      everythinggraph.FlowAuto,
		"adaptive":  everythinggraph.FlowAuto,
	}
	for in, want := range cases {
		got, err := parseFlow(in)
		if err != nil || got != want {
			t.Errorf("parseFlow(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseFlow("sideways"); err == nil {
		t.Error("expected error for unknown flow")
	}
}

func TestParseSync(t *testing.T) {
	cases := map[string]everythinggraph.Sync{
		"locks":   everythinggraph.SyncLocks,
		"atomic":  everythinggraph.SyncAtomics,
		"cas":     everythinggraph.SyncAtomics,
		"nolock":  everythinggraph.SyncPartitionFree,
		"no-lock": everythinggraph.SyncPartitionFree,
	}
	for in, want := range cases {
		got, err := parseSync(in)
		if err != nil || got != want {
			t.Errorf("parseSync(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseSync("hope"); err == nil {
		t.Error("expected error for unknown sync mode")
	}
}

func TestParsePrep(t *testing.T) {
	cases := map[string]everythinggraph.PrepMethod{
		"dynamic":    everythinggraph.PrepDynamic,
		"count":      everythinggraph.PrepCountSort,
		"count-sort": everythinggraph.PrepCountSort,
		"radix":      everythinggraph.PrepRadixSort,
	}
	for in, want := range cases {
		got, err := parsePrep(in)
		if err != nil || got != want {
			t.Errorf("parsePrep(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parsePrep("magic"); err == nil {
		t.Error("expected error for unknown prep method")
	}
}

func TestBuildGraphGenerators(t *testing.T) {
	for _, kind := range []string{"rmat", "twitter", "road", "bipartite"} {
		g, users, err := buildGraph("", "text", true, kind, 8, 1)
		if err != nil {
			t.Fatalf("buildGraph(%q): %v", kind, err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("buildGraph(%q) produced an empty graph", kind)
		}
		if kind == "bipartite" && users == 0 {
			t.Fatal("bipartite generator must report the user count")
		}
	}
	if _, _, err := buildGraph("", "text", true, "nope", 8, 1); err == nil {
		t.Fatal("expected error for unknown generator")
	}
	if _, _, err := buildGraph("/does/not/exist", "text", true, "rmat", 8, 1); err == nil {
		t.Fatal("expected error for missing input file")
	}
}

func TestMakeAlgorithm(t *testing.T) {
	g, _, err := buildGraph("", "text", true, "rmat", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"bfs", "pagerank", "wcc", "sssp", "spmv", "als"} {
		alg, err := makeAlgorithm(name, 0, 5, 0, g)
		if err != nil {
			t.Fatalf("makeAlgorithm(%q): %v", name, err)
		}
		if alg.Name() == "" {
			t.Fatalf("algorithm %q has no name", name)
		}
	}
	if _, err := makeAlgorithm("sorting-hat", 0, 5, 0, g); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}
