// Concurrent: demonstrates serving many queries from one process — the
// two mechanisms behind it, separately and composed. Pool leases carve
// the shared worker pool into private sub-gangs so independent runs
// overlap instead of serializing, each keeping its scratch (including a
// store's streaming arenas) to itself and staying bit-identical to a solo
// run. Multi-source batching (the MS-BFS idea) answers up to 64 traversal
// queries in ONE engine run: each source owns a bit of a per-vertex mask
// word, so a single edge scan advances every traversal at once, and under
// the planner the batch is its own cost population (the ×k plan labels).
// Graph.Batch composes both: source lists split into ≤64-wide groups that
// run concurrently on scan-volume-proportional leases.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	everythinggraph "github.com/epfl-repro/everythinggraph"
)

func main() {
	const scale = 16
	g := everythinggraph.GenerateRMAT(scale, 16, 7)
	fmt.Printf("dataset: RMAT-%d, %d vertices, %d edges\n\n", scale, g.NumVertices(), g.NumEdges())

	// A small streamed store so one of the overlapping queries exercises
	// the out-of-core path (per-lease stream pools).
	dir, err := os.MkdirTemp("", "egconcurrent")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	storePath := filepath.Join(dir, "concurrent.egs")
	if err := everythinggraph.BuildCompressedStore(storePath, g, 16, false); err != nil {
		log.Fatal(err)
	}
	st, err := everythinggraph.OpenStore(storePath)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	// --- Pool leases: two queries overlapping, bit-identical to solo ---
	bfsCfg := everythinggraph.Config{
		Layout: everythinggraph.LayoutAdjacency,
		Flow:   everythinggraph.FlowPush,
		Sync:   everythinggraph.SyncAtomics,
	}
	prCfg := everythinggraph.Config{Flow: everythinggraph.FlowPush, MemoryBudget: 32 << 20}

	soloBFS := everythinggraph.BFS(1)
	if _, err := g.Run(soloBFS, bfsCfg); err != nil {
		log.Fatal(err)
	}
	soloPR := everythinggraph.PageRank()
	if _, err := st.Run(soloPR, prCfg); err != nil {
		log.Fatal(err)
	}

	fmt.Println("pool leases: in-memory BFS + streamed PageRank, overlapping:")
	leaseA := everythinggraph.NewLease(2)
	leaseB := everythinggraph.NewLease(2)
	bfsCfgL, prCfgL := bfsCfg, prCfg
	bfsCfgL.Lease = leaseA
	prCfgL.Lease = leaseB

	concBFS := everythinggraph.BFS(1)
	concPR := everythinggraph.PageRank()
	var wg sync.WaitGroup
	wg.Add(2)
	start := time.Now()
	go func() {
		defer wg.Done()
		defer leaseA.Release()
		if _, err := g.Run(concBFS, bfsCfgL); err != nil {
			log.Fatal(err)
		}
	}()
	go func() {
		defer wg.Done()
		defer leaseB.Release()
		if _, err := st.Run(concPR, prCfgL); err != nil {
			log.Fatal(err)
		}
	}()
	wg.Wait()
	elapsed := time.Since(start)
	for v := range soloBFS.Level {
		if concBFS.Level[v] != soloBFS.Level[v] {
			log.Fatalf("leased BFS diverged at vertex %d", v)
		}
	}
	for v := range soloPR.Rank {
		if math.Float64bits(concPR.Rank[v]) != math.Float64bits(soloPR.Rank[v]) {
			log.Fatalf("leased PageRank diverged at vertex %d", v)
		}
	}
	fmt.Printf("  both done in %v on 2-worker leases\n", elapsed.Round(time.Millisecond))
	fmt.Println("  -> results bit-identical to the same runs executed alone")

	// --- Multi-source batching: 64 BFS queries in one engine run ---
	n := g.NumVertices()
	sources := make([]everythinggraph.VertexID, 64)
	for i := range sources {
		sources[i] = everythinggraph.VertexID((i*2654435761 + 1) % n)
	}

	start = time.Now()
	for _, src := range sources {
		if _, err := g.Run(everythinggraph.BFS(src), bfsCfg); err != nil {
			log.Fatal(err)
		}
	}
	sequential := time.Since(start)

	mb := everythinggraph.MultiBFS(sources)
	start = time.Now()
	mbRes, err := g.Run(mb, everythinggraph.Config{Flow: everythinggraph.FlowAuto})
	if err != nil {
		log.Fatal(err)
	}
	batched := time.Since(start)

	fmt.Printf("\nmulti-source batching, %d BFS queries:\n", len(sources))
	fmt.Printf("  64 sequential runs:  %8v\n", sequential.Round(time.Millisecond))
	fmt.Printf("  one batched sweep:   %8v  (%.1fx less per source)\n",
		batched.Round(time.Millisecond), float64(sequential)/float64(batched))
	fmt.Println("  adaptive plan trace (every label carries the batch width):")
	for _, it := range mbRes.Run.PerIteration[:min(3, len(mbRes.Run.PerIteration))] {
		fmt.Printf("    iteration %2d: active=%7d plan=%s\n", it.Iteration, it.ActiveVertices, it.Plan)
	}
	fmt.Printf("  source 0 reached %d vertices; source 63 reached %d\n",
		mb.Reached(0), mb.Reached(63))

	// --- Graph.Batch: arbitrary source lists, grouped and leased ---
	many := make([]everythinggraph.VertexID, 128)
	for i := range many {
		many[i] = everythinggraph.VertexID((i*131 + 7) % n)
	}
	start = time.Now()
	results, err := g.Batch(everythinggraph.BatchBFS, many, bfsCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGraph.Batch: %d sources -> %d bit-parallel groups on concurrent leases, %v\n",
		len(many), (len(many)+63)/64, time.Since(start).Round(time.Millisecond))
	check := everythinggraph.BFS(many[100])
	if _, err := g.Run(check, bfsCfg); err != nil {
		log.Fatal(err)
	}
	for v := range check.Level {
		if results[100].Level[v] != check.Level[v] {
			log.Fatalf("batched query 100 diverged at vertex %d", v)
		}
	}
	fmt.Println("  -> spot-checked query levels identical to a solo run")

	// --- NUMA placement: concurrent queries spread across sockets ---
	// With Placement left at auto (or forced pinned), the engine allocates
	// each run's pinned candidates a NUMA node round-robin, so two leased
	// queries land on different sockets instead of stacking on one memory
	// controller. On single-node (or non-Linux) hosts everything degrades
	// to the interleaved engine: no pins, identical results, no overhead.
	fmt.Printf("\nNUMA placement: host topology %s\n", everythinggraph.NUMATopology())
	if everythinggraph.NumNUMANodes() <= 1 {
		fmt.Println("  single NUMA node: placement degrades to interleaved execution")
		fmt.Println("  (runs below stay valid — pinned plans simply never enumerate)")
	}
	placedCfg := bfsCfg
	placedCfg.Placement = everythinggraph.PlacementPinned
	leaseC := everythinggraph.NewLease(2)
	leaseD := everythinggraph.NewLease(2)
	cfgC, cfgD := placedCfg, placedCfg
	cfgC.Lease = leaseC
	cfgD.Lease = leaseD
	placedA := everythinggraph.BFS(1)
	placedB := everythinggraph.BFS(many[1])
	var resA, resB *everythinggraph.Result
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer leaseC.Release()
		var errA error
		if resA, errA = g.Run(placedA, cfgC); errA != nil {
			log.Fatal(errA)
		}
	}()
	go func() {
		defer wg.Done()
		defer leaseD.Release()
		var errB error
		if resB, errB = g.Run(placedB, cfgD); errB != nil {
			log.Fatal(errB)
		}
	}()
	wg.Wait()
	fmt.Printf("  two pinned leased BFS runs: plans %q and %q\n",
		resA.Run.PerIteration[0].Plan, resB.Run.PerIteration[0].Plan)
	for v := range soloBFS.Level {
		if placedA.Level[v] != soloBFS.Level[v] {
			log.Fatalf("placed BFS diverged at vertex %d", v)
		}
	}
	fmt.Println("  -> placement changes where threads run, never what they compute")
}
