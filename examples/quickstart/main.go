// Quickstart: generate a power-law graph, run BFS and PageRank with two
// different technique combinations, and print the end-to-end time breakdown
// that the paper argues must always be reported (loading + pre-processing +
// algorithm, not algorithm time alone).
package main

import (
	"fmt"
	"log"

	everythinggraph "github.com/epfl-repro/everythinggraph"
)

func main() {
	// An RMAT graph with 2^18 vertices and 2^22 edges — the same family of
	// synthetic power-law graphs the paper evaluates (at a laptop-friendly
	// scale).
	g := everythinggraph.GenerateRMAT(18, 16, 1)
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())

	// BFS on adjacency lists, push mode: the configuration the paper finds
	// best end-to-end for traversal algorithms on power-law graphs.
	bfs := everythinggraph.BFS(0)
	res, err := g.Run(bfs, everythinggraph.Config{
		Layout: everythinggraph.LayoutAdjacency,
		Flow:   everythinggraph.FlowPush,
		Sync:   everythinggraph.SyncAtomics,
		Prep:   everythinggraph.PrepRadixSort,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BFS  (adjacency, push):   %s\n", res.Breakdown)
	fmt.Printf("     reached %d vertices in %d iterations\n\n", bfs.Reached(), res.Run.Iterations)

	// PageRank on the raw edge array: zero pre-processing, every iteration
	// streams all edges.
	pr := everythinggraph.PageRank()
	res2, err := g.Run(pr, everythinggraph.Config{
		Layout: everythinggraph.LayoutEdgeArray,
		Flow:   everythinggraph.FlowPush,
		Sync:   everythinggraph.SyncAtomics,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PageRank (edge array):    %s\n", res2.Breakdown)

	// PageRank again on the grid layout without locks: more pre-processing,
	// faster iterations — the trade-off of Figure 5b.
	g2 := everythinggraph.GenerateRMAT(18, 16, 1)
	pr2 := everythinggraph.PageRank()
	res3, err := g2.Run(pr2, everythinggraph.Config{
		Layout: everythinggraph.LayoutGrid,
		Flow:   everythinggraph.FlowPull,
		Sync:   everythinggraph.SyncPartitionFree,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PageRank (grid, no lock): %s\n", res3.Breakdown)
	fmt.Println("\nNote how the grid trades extra pre-processing for faster iterations;")
	fmt.Println("whether that pays off depends on how long the algorithm runs (Section 5 of the paper).")
}
