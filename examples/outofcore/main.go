// Outofcore: demonstrates the disk-resident grid store — the grid layout
// of Section 5.1 extended beyond RAM. The example partitions an RMAT graph
// into an on-disk store, runs PageRank both in memory (grid layout,
// partition-free) and out-of-core under a small resident budget, verifies
// the results are bit-identical, and prints the I/O-wait vs. overlap
// accounting that extends the paper's end-to-end breakdown to storage.
// A final adaptive run shows the planner moving the I/O knobs (prefetch
// depth, working budget) per iteration from that same accounting.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	everythinggraph "github.com/epfl-repro/everythinggraph"
	"github.com/epfl-repro/everythinggraph/internal/metrics"
)

func main() {
	const scale = 16
	g := everythinggraph.GenerateRMAT(scale, 16, 11)
	fmt.Printf("dataset: %d vertices, %d edges (%.0f MB on disk)\n\n",
		g.NumVertices(), g.NumEdges(), float64(g.NumEdges())*12/1e6)

	// In-memory reference: the grid layout with partition-free columns.
	prMem := everythinggraph.PageRank()
	memRes, err := g.Run(prMem, everythinggraph.Config{
		Layout: everythinggraph.LayoutGrid,
		Flow:   everythinggraph.FlowPush,
		Sync:   everythinggraph.SyncPartitionFree,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in-memory grid:   %s\n", memRes.Breakdown)

	// Partition the same edges into a disk store and stream them back
	// under a 16 MiB resident-edge budget.
	dir, err := os.MkdirTemp("", "egraph-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "rmat.egs")
	if err := everythinggraph.BuildStore(path, g, 0, false); err != nil {
		log.Fatal(err)
	}
	st, err := everythinggraph.OpenStore(path)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	prOOC := everythinggraph.PageRank()
	oocRes, err := st.Run(prOOC, everythinggraph.Config{
		Flow:         everythinggraph.FlowPush,
		MemoryBudget: 16 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("out-of-core grid: %s\n", oocRes.Breakdown)

	io := st.IOStats()
	fmt.Printf("streamed %.0f MB in %d reads over %d passes, peak resident %.1f MiB\n",
		float64(io.BytesRead)/1e6, io.Reads, io.Passes, float64(io.PeakResidentBytes)/(1<<20))

	for v := range prMem.Rank {
		if prMem.Rank[v] != prOOC.Rank[v] {
			log.Fatalf("rank[%d] differs: %v in-memory vs %v out-of-core", v, prMem.Rank[v], prOOC.Rank[v])
		}
	}
	fmt.Println("\nall ranks bit-identical to the in-memory run ✓")

	// The same partitioning, compressed: a version-2 store holds every cell
	// as a delta+varint segment (weights in a parallel plane) and decodes it
	// inside the prefetch pipeline, so each pass moves a fraction of the
	// bytes. The encoding keeps the exact in-cell edge order, which is why
	// the ranks can stay bit-identical rather than merely close.
	pathV2 := filepath.Join(dir, "rmat.v2.egs")
	if err := everythinggraph.BuildCompressedStore(pathV2, g, 0, false); err != nil {
		log.Fatal(err)
	}
	stV2, err := everythinggraph.OpenStore(pathV2)
	if err != nil {
		log.Fatal(err)
	}
	defer stV2.Close()
	fmt.Printf("\ncompressed store: format v%d, %.2fx smaller than the 12 B/edge records\n",
		stV2.FormatVersion(), stV2.CompressionRatio())

	before := stV2.IOStats()
	prV2 := everythinggraph.PageRank()
	v2Res, err := stV2.Run(prV2, everythinggraph.Config{
		Flow:         everythinggraph.FlowPush,
		MemoryBudget: 16 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	v2IO := stV2.IOStats()
	fmt.Printf("compressed streamed: %s\n", v2Res.Breakdown)
	fmt.Printf("bytes per pass: %.1f MB compressed vs %.1f MB raw\n",
		float64(v2IO.BytesRead-before.BytesRead)/float64(v2IO.Passes-before.Passes)/1e6,
		float64(io.BytesRead)/float64(io.Passes)/1e6)
	for v := range prMem.Rank {
		if prMem.Rank[v] != prV2.Rank[v] {
			log.Fatalf("compressed rank[%d] differs: %v vs %v", v, prMem.Rank[v], prV2.Rank[v])
		}
	}
	fmt.Println("compressed ranks bit-identical too ✓")

	// The same run under the adaptive planner: the 16 MiB budget becomes a
	// ceiling, and the prefetch depth and working budget move per iteration
	// with the measured I/O-wait breakdown — visible as the [dN <budget>]
	// suffix of each iteration's plan. The I/O knobs only change how a pass
	// is fed, never the per-destination order, so the ranks stay
	// bit-identical while the plan moves.
	prAuto := everythinggraph.PageRank()
	autoRes, err := st.Run(prAuto, everythinggraph.Config{
		Flow:         everythinggraph.FlowAuto,
		MemoryBudget: 16 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nadaptive streamed: %s\n", autoRes.Breakdown)
	fmt.Printf("plan trace: %s\n", metrics.CompressPlanTrace(autoRes.Run.PlanTrace()))
	for v := range prMem.Rank {
		if prMem.Rank[v] != prAuto.Rank[v] {
			log.Fatalf("adaptive rank[%d] differs: %v vs %v", v, prMem.Rank[v], prAuto.Rank[v])
		}
	}
	fmt.Println("adaptive ranks bit-identical too ✓")

	// Measure -> repack -> re-run: the store's P is frozen at build time,
	// but its virtual coarsening ladder is not. The adaptive run above
	// already streamed at the rung the cost model picked (the "grid/<P>@s1"
	// part of the plan labels); repartitioning materializes that rung as
	// the store's physical resolution, so every pass issues whole-cell
	// reads with no merge bookkeeping — same bytes, fewer I/Os,
	// bit-identical ranks.
	chosen := autoRes.Run.PerIteration[len(autoRes.Run.PerIteration)-1].Plan.GridLevel
	fmt.Printf("\nladder %v; adaptive run settled on P=%d (store holds P=%d)\n",
		st.Levels(), chosen, st.GridP())
	if chosen < st.GridP() {
		repacked := filepath.Join(dir, "rmat.repack.egs")
		if err := st.Repartition(repacked, chosen, false); err != nil {
			log.Fatal(err)
		}
		stR, err := everythinggraph.OpenStore(repacked)
		if err != nil {
			log.Fatal(err)
		}
		defer stR.Close()
		prR := everythinggraph.PageRank()
		if _, err := stR.Run(prR, everythinggraph.Config{
			Flow:         everythinggraph.FlowPush,
			MemoryBudget: 16 << 20,
		}); err != nil {
			log.Fatal(err)
		}
		rIO := stR.IOStats()
		fmt.Printf("repacked at P=%d: %d reads over %d passes (finest-level store: %d reads over %d passes)\n",
			chosen, rIO.Reads, rIO.Passes, io.Reads, io.Passes)
		for v := range prMem.Rank {
			if prMem.Rank[v] != prR.Rank[v] {
				log.Fatalf("repacked rank[%d] differs: %v vs %v", v, prMem.Rank[v], prR.Rank[v])
			}
		}
		fmt.Println("repacked ranks bit-identical too ✓")
	}
}
