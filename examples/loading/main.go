// Loading: demonstrates the end-to-end view of Section 3.4-3.5 of the
// paper — when the graph comes from storage rather than memory, the choice
// of pre-processing method flips, because dynamic adjacency-list building
// can consume edges while they arrive from the device, whereas radix sort
// needs the complete input first.
//
// The example writes an RMAT edge list to a buffer, then "loads" it from
// two simulated devices (the paper's 380 MB/s SSD and 100 MB/s HDD),
// overlapping dynamic CSR construction with the load, and compares the
// result against loading first and radix-sorting afterwards.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	everythinggraph "github.com/epfl-repro/everythinggraph"
)

func main() {
	const scale = 17
	g := everythinggraph.GenerateRMAT(scale, 16, 5)
	fmt.Printf("dataset: %d vertices, %d edges (%d MB on disk)\n\n",
		g.NumVertices(), g.NumEdges(), g.NumEdges()*12/1e6)

	var encoded bytes.Buffer
	if err := g.WriteBinary(&encoded); err != nil {
		log.Fatal(err)
	}
	data := encoded.Bytes()

	for _, dev := range []everythinggraph.Device{everythinggraph.DeviceSSD, everythinggraph.DeviceHDD} {
		fmt.Printf("== loading from %s (%.0f MB/s) ==\n", dev.Name, dev.BandwidthMBps)

		// Strategy 1: dynamic per-vertex arrays built while the edges
		// stream in. The builder here is a simple per-vertex append — the
		// point is that its work happens inside the consumer callback and
		// therefore hides behind the device.
		perVertex := make([][]everythinggraph.VertexID, g.NumVertices())
		_, overlapped, err := everythinggraph.LoadBinaryOverlapped(
			bytes.NewReader(data), dev, true,
			func(chunk []everythinggraph.Edge) {
				for _, e := range chunk {
					perVertex[e.Src] = append(perVertex[e.Src], e.Dst)
				}
			})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  dynamic, overlapped with load: end-to-end %v (load %v, build %v hidden behind it)\n",
			overlapped.EndToEnd.Round(time.Millisecond),
			overlapped.LoadTime.Round(time.Millisecond),
			overlapped.ConsumeTime.Round(time.Millisecond))

		// Strategy 2: load everything first (no consumer), then build the
		// adjacency lists with the radix sort — fastest in memory, but its
		// work adds to the load time instead of hiding behind it.
		loaded, pureLoad, err := everythinggraph.LoadBinaryOverlapped(bytes.NewReader(data), dev, true, nil)
		if err != nil {
			log.Fatal(err)
		}
		prepStart := time.Now()
		if _, err := loaded.Prepare(everythinggraph.Config{
			Layout: everythinggraph.LayoutAdjacency,
			Prep:   everythinggraph.PrepRadixSort,
		}); err != nil {
			log.Fatal(err)
		}
		radix := time.Since(prepStart)
		fmt.Printf("  radix sort after the load:     end-to-end %v (load %v + sort %v)\n\n",
			(pureLoad.LoadTime + radix).Round(time.Millisecond),
			pureLoad.LoadTime.Round(time.Millisecond),
			radix.Round(time.Millisecond))
	}

	fmt.Println("The dynamic build is essentially free once the device is the bottleneck: it never")
	fmt.Println("waits on anything but the disk, while the sort-based build adds its full cost on")
	fmt.Println("top of the load. That is the Table 3 trade-off; only when the input is already in")
	fmt.Println("memory (no load to hide behind) does radix sort win outright (Table 2).")
}
