// Adaptive: demonstrates the per-iteration execution planner behind
// FlowAuto — the paper's synthesis turned into an online policy. No single
// (layout, flow, sync) combination wins every algorithm, graph and
// iteration; instead of asking the caller to pick one, the planner chooses
// per iteration using frontier density, active-out-edge thresholds and
// measured per-edge costs. The example runs BFS under every fixed flow and
// under the planner, shows that the adaptive run matches the best fixed
// configuration's result while tracking its time, and prints the plan
// trace so the switching is visible. It then repeats the exercise for
// PageRank, where the planner freezes on the pull/partition-free plan and
// the ranks come out bit-identical to that fixed configuration.
package main

import (
	"fmt"
	"log"
	"math"

	everythinggraph "github.com/epfl-repro/everythinggraph"
)

func main() {
	const scale = 16
	g := everythinggraph.GenerateRMAT(scale, 16, 7)
	fmt.Printf("dataset: RMAT-%d, %d vertices, %d edges\n\n", scale, g.NumVertices(), g.NumEdges())

	// BFS under the three fixed flows on adjacency lists.
	fmt.Println("BFS, fixed configurations:")
	type fixed struct {
		label string
		cfg   everythinggraph.Config
	}
	ref := make(map[string][]int32)
	for _, fc := range []fixed{
		{"adjacency/push/atomics", everythinggraph.Config{
			Layout: everythinggraph.LayoutAdjacency, Flow: everythinggraph.FlowPush, Sync: everythinggraph.SyncAtomics}},
		{"adjacency/pull/no-lock", everythinggraph.Config{
			Layout: everythinggraph.LayoutAdjacency, Flow: everythinggraph.FlowPull, Sync: everythinggraph.SyncPartitionFree}},
		{"adjacency/push-pull", everythinggraph.Config{
			Layout: everythinggraph.LayoutAdjacency, Flow: everythinggraph.FlowPushPull, Sync: everythinggraph.SyncAtomics}},
	} {
		bfs := everythinggraph.BFS(0)
		res, err := g.Run(bfs, fc.cfg)
		if err != nil {
			log.Fatal(err)
		}
		ref[fc.label] = append([]int32(nil), bfs.Level...)
		fmt.Printf("  %-24s algorithm=%v (%d iterations)\n", fc.label, res.Breakdown.Algorithm, res.Run.Iterations)
	}

	// The same traversal under the planner: one entry point, no technique
	// knobs, per-iteration plans chosen online. A trace recorder rides
	// along so the planner's reasoning can be inspected afterwards.
	rec := everythinggraph.NewTraceRecorder(0)
	autoBFS := everythinggraph.BFS(0)
	autoRes, err := g.Run(autoBFS, everythinggraph.Config{Flow: everythinggraph.FlowAuto, Trace: rec})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-24s algorithm=%v (%d iterations)\n\n", "auto (planner)", autoRes.Breakdown.Algorithm, autoRes.Run.Iterations)

	fmt.Println("adaptive BFS plan trace:")
	for _, it := range autoRes.Run.PerIteration {
		fmt.Printf("  iteration %2d: active=%7d plan=%s\n", it.Iteration, it.ActiveVertices, it.Plan)
	}
	for label, levels := range ref {
		for v := range levels {
			if autoBFS.Level[v] != levels[v] {
				log.Fatalf("adaptive BFS diverged from %s at vertex %d", label, v)
			}
		}
	}
	fmt.Println("  -> levels identical to every fixed configuration")

	// The recorder kept every planner decision: the full candidate set
	// each choice was made from, with the predicted (prior) and measured
	// per-edge costs. Print one decision as an excerpt — the same data the
	// Chrome trace export (egraph -trace) attaches to its decision events.
	if decisions := rec.Decisions(); len(decisions) > 0 {
		d := decisions[len(decisions)/2]
		fmt.Printf("\nplanner decision at iteration %d (1 of %d recorded):\n", d.Iteration, len(decisions))
		for _, c := range d.Candidates {
			marker := " "
			if c.Chosen {
				marker = "*"
			}
			fmt.Printf("  %s %-34s predicted=%6.2f ns/edge  measured=%6.2f ns/edge\n",
				marker, c.Plan, c.PredictedNsPerEdge, c.MeasuredNsPerEdge)
		}
		fmt.Println("  -> * marks the plan the engine executed that iteration")
	}

	// PageRank: dense algorithms are planned once and frozen, so the
	// adaptive ranks are bit-identical to the plan's fixed configuration.
	fixedPR := everythinggraph.PageRank()
	fixedRes, err := g.Run(fixedPR, everythinggraph.Config{
		Layout: everythinggraph.LayoutAdjacency, Flow: everythinggraph.FlowPull, Sync: everythinggraph.SyncPartitionFree})
	if err != nil {
		log.Fatal(err)
	}
	autoPR := everythinggraph.PageRank()
	autoPRRes, err := g.Run(autoPR, everythinggraph.Config{Flow: everythinggraph.FlowAuto})
	if err != nil {
		log.Fatal(err)
	}
	for v := range fixedPR.Rank {
		if math.Float64bits(autoPR.Rank[v]) != math.Float64bits(fixedPR.Rank[v]) {
			log.Fatalf("adaptive PageRank not bit-identical at vertex %d", v)
		}
	}
	fmt.Printf("\nPageRank:\n")
	fmt.Printf("  fixed pull/no-lock       algorithm=%v\n", fixedRes.Breakdown.Algorithm)
	fmt.Printf("  auto (planner)           algorithm=%v  plan=%s (frozen)\n",
		autoPRRes.Breakdown.Algorithm, autoPRRes.Run.PerIteration[0].Plan)
	fmt.Println("  -> ranks bit-identical to the pull/no-lock configuration")

	// Grid resolution as a planned dimension: build ONLY a grid, forced to
	// the paper's 256x256 — a deliberate misfit at this scale, where most
	// cells hold a handful of edges and per-cell setup dominates. The grid
	// carries its pyramid (every coarser P as a zero-copy virtual view), so
	// the planner can walk away from the seeded resolution; the frozen
	// level shows up in the plan label as grid/<P>.
	gridGraph := everythinggraph.GenerateRMAT(scale, 16, 7)
	gridCfg := everythinggraph.Config{
		Layout: everythinggraph.LayoutGrid, Flow: everythinggraph.FlowPush,
		Sync: everythinggraph.SyncPartitionFree, GridP: 256,
	}
	finePR := everythinggraph.PageRank()
	fineRes, err := gridGraph.Run(finePR, gridCfg)
	if err != nil {
		log.Fatal(err)
	}
	gridAutoPR := everythinggraph.PageRank()
	gridAutoRes, err := gridGraph.Run(gridAutoPR, everythinggraph.Config{
		Layout: everythinggraph.LayoutGrid, Flow: everythinggraph.FlowAuto, GridP: 256})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPageRank on a grid-only graph (256x256 forced — a misfit here):\n")
	fmt.Printf("  fixed grid/256           algorithm=%v\n", fineRes.Breakdown.Algorithm)
	fmt.Printf("  auto (planner)           algorithm=%v  plan=%s (frozen)\n",
		gridAutoRes.Breakdown.Algorithm, gridAutoRes.Run.PerIteration[0].Plan)
	fmt.Println("  -> the planner chose its resolution off the pyramid; pin any level")
	fmt.Println("     with Config.GridLevels (CLI: -grid-levels) to compare fixed points")
}
