// Socialrank: analyze a Twitter-like follower graph — rank accounts with
// PageRank, find communities of mutual reachability with WCC, and compare
// the data layouts the paper studies for whole-graph analytics.
//
// This is the workload class the paper's Figures 5b and 8 are about: the
// algorithm touches the whole graph every iteration, so spending
// pre-processing time on a cache-friendly layout (the grid) and removing
// locks both pay off.
package main

import (
	"fmt"
	"log"
	"time"

	everythinggraph "github.com/epfl-repro/everythinggraph"
)

func main() {
	const scale = 18
	fmt.Printf("generating Twitter-profile graph (scale %d)...\n", scale)
	g := everythinggraph.GenerateTwitterProfile(scale, 7)
	fmt.Printf("graph: %d accounts, %d follow edges\n\n", g.NumVertices(), g.NumEdges())

	// --- PageRank: compare three layouts end-to-end --------------------
	type layoutCase struct {
		name string
		cfg  everythinggraph.Config
	}
	cases := []layoutCase{
		{"edge array (no prep)", everythinggraph.Config{
			Layout: everythinggraph.LayoutEdgeArray,
			Flow:   everythinggraph.FlowPush,
			Sync:   everythinggraph.SyncAtomics,
		}},
		{"adjacency, pull, no lock", everythinggraph.Config{
			Layout: everythinggraph.LayoutAdjacency,
			Flow:   everythinggraph.FlowPull,
			Sync:   everythinggraph.SyncPartitionFree,
		}},
		{"grid, pull, no lock", everythinggraph.Config{
			Layout: everythinggraph.LayoutGrid,
			Flow:   everythinggraph.FlowPull,
			Sync:   everythinggraph.SyncPartitionFree,
		}},
	}

	var bestRanks []everythinggraph.VertexID
	for _, c := range cases {
		// A fresh graph per layout so each case pays its own pre-processing.
		gc := everythinggraph.GenerateTwitterProfile(scale, 7)
		pr := everythinggraph.PageRank()
		res, err := gc.Run(pr, c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("PageRank / %-26s %s\n", c.name+":", res.Breakdown)
		bestRanks = pr.Top(5)
	}
	fmt.Printf("\ntop-5 accounts by PageRank: %v\n\n", bestRanks)

	// --- WCC: the paper's Table 6 says edge arrays win on low-diameter
	// power-law graphs because adjacency lists would need the undirected
	// doubling during pre-processing.
	undirected := true
	wcc := everythinggraph.WCC()
	start := time.Now()
	resW, err := g.Run(wcc, everythinggraph.Config{
		Layout:     everythinggraph.LayoutEdgeArray,
		Flow:       everythinggraph.FlowPush,
		Sync:       everythinggraph.SyncAtomics,
		Undirected: &undirected,
	})
	if err != nil {
		log.Fatal(err)
	}
	sizes := wcc.ComponentSizes()
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	fmt.Printf("WCC / edge array: %s (wall %v)\n", resW.Breakdown, time.Since(start).Round(time.Millisecond))
	fmt.Printf("components: %d, largest holds %.1f%% of all accounts\n",
		wcc.NumComponents(), 100*float64(largest)/float64(g.NumVertices()))
}
