// Roadrouting: shortest paths and reachability on a road-network-like
// graph. High-diameter, low-degree graphs behave very differently from
// power-law graphs (Section 8 of the paper): traversals need many
// iterations, each touching a small frontier, so adjacency lists pay off
// while grids and NUMA-style partitioning do not.
package main

import (
	"fmt"
	"log"
	"math"

	everythinggraph "github.com/epfl-repro/everythinggraph"
)

func main() {
	const side = 512 // 512x512 lattice ≈ 262k intersections
	fmt.Printf("generating road network (%dx%d lattice with shortcuts)...\n", side, side)
	g := everythinggraph.GenerateRoad(side, side, 3)
	fmt.Printf("graph: %d intersections, %d road segments\n\n", g.NumVertices(), g.NumEdges())

	source := everythinggraph.VertexID(0) // top-left corner

	// --- SSSP on adjacency lists (the paper's best configuration) -------
	sssp := everythinggraph.SSSP(source)
	res, err := g.Run(sssp, everythinggraph.Config{
		Layout: everythinggraph.LayoutAdjacency,
		Flow:   everythinggraph.FlowPush,
		Sync:   everythinggraph.SyncAtomics,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SSSP / adjacency push: %s, %d iterations\n", res.Breakdown, res.Run.Iterations)

	// Distance to the opposite corner of the map.
	opposite := everythinggraph.VertexID(side*side - 1)
	fmt.Printf("shortest travel cost corner-to-corner: %.0f\n", sssp.Distance(opposite))
	fmt.Printf("reachable intersections: %d\n\n", sssp.Reached())

	// --- BFS hop count, comparing adjacency lists against the edge array.
	// On a graph whose diameter is ~2*side, the edge array's full scan per
	// iteration is catastrophic — exactly the effect the paper describes.
	bfsAdj := everythinggraph.BFS(source)
	resAdj, err := g.Run(bfsAdj, everythinggraph.Config{
		Layout: everythinggraph.LayoutAdjacency,
		Flow:   everythinggraph.FlowPush,
		Sync:   everythinggraph.SyncAtomics,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BFS / adjacency push:  %s, depth %d\n", resAdj.Breakdown, bfsAdj.MaxLevel())

	// Keep the edge-array comparison affordable by bounding the iterations:
	// the point is the per-iteration cost ratio, which is visible after a
	// few hundred levels.
	bfsEdge := everythinggraph.BFS(source)
	resEdge, err := g.Run(bfsEdge, everythinggraph.Config{
		Layout:        everythinggraph.LayoutEdgeArray,
		Flow:          everythinggraph.FlowPush,
		Sync:          everythinggraph.SyncAtomics,
		MaxIterations: 200,
	})
	if err != nil {
		log.Fatal(err)
	}
	perIterAdj := res.Breakdown.Algorithm.Seconds() / math.Max(1, float64(res.Run.Iterations))
	perIterEdge := resEdge.Breakdown.Algorithm.Seconds() / math.Max(1, float64(resEdge.Run.Iterations))
	fmt.Printf("BFS / edge array:      %s (first %d levels only)\n", resEdge.Breakdown, resEdge.Run.Iterations)
	fmt.Printf("\nper-iteration cost: adjacency %.3fms vs edge array %.3fms (%.0fx)\n",
		perIterAdj*1e3, perIterEdge*1e3, perIterEdge/math.Max(perIterAdj, 1e-9))
	fmt.Println("high-diameter graphs need thousands of iterations, so the edge array's")
	fmt.Println("full scan per iteration never amortizes — use adjacency lists (paper, Section 8).")
}
