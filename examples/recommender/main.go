// Recommender: alternating least squares over a bipartite user-item rating
// graph (the Netflix-style workload of the paper's Table 6). ALS updates one
// side of the bipartition per iteration, each vertex solving a small
// regularized least-squares problem over its ratings — a pull-mode,
// lock-free workload on adjacency lists.
package main

import (
	"fmt"
	"log"

	everythinggraph "github.com/epfl-repro/everythinggraph"
)

func main() {
	const (
		users          = 30000
		items          = 2000
		ratingsPerUser = 24
	)
	fmt.Printf("generating rating graph (%d users, %d items)...\n", users, items)
	g := everythinggraph.GenerateBipartite(users, items, ratingsPerUser, 11)
	fmt.Printf("graph: %d vertices, %d ratings\n\n", g.NumVertices(), g.NumEdges())

	als := everythinggraph.ALS(users)
	als.Factors = 8
	als.Sweeps = 5

	undirected := true
	res, err := g.Run(als, everythinggraph.Config{
		Layout:     everythinggraph.LayoutAdjacency,
		Flow:       everythinggraph.FlowPull,
		Sync:       everythinggraph.SyncPartitionFree,
		Undirected: &undirected,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ALS / adjacency pull (no lock): %s\n", res.Breakdown)
	fmt.Printf("completed %d half-iterations (%d full sweeps)\n\n", res.Run.Iterations, als.Sweeps)

	// Training error over the observed ratings.
	rmse := als.RMSE(rawEdges(g))
	fmt.Printf("training RMSE: %.3f (ratings are integers in [1,5])\n\n", rmse)

	// Recommend: for the first few users, print the predicted score of a
	// popular item they have not necessarily rated.
	fmt.Println("sample predictions (user -> item 0):")
	for u := 0; u < 5; u++ {
		p := als.Predict(everythinggraph.VertexID(u), everythinggraph.VertexID(users))
		fmt.Printf("  user %d: predicted rating %.2f\n", u, p)
	}
}

// rawEdges exposes the rating edges for the RMSE computation.
func rawEdges(g *everythinggraph.Graph) []everythinggraph.Edge {
	return g.Internal().EdgeArray.Edges
}
