package everythinggraph

import (
	"bytes"
	"strings"
	"testing"
)

func TestGenerateAndRunBFSEndToEnd(t *testing.T) {
	g := GenerateRMAT(12, 8, 1)
	if g.NumVertices() != 1<<12 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	bfs := BFS(0)
	res, err := g.Run(bfs, Config{
		Layout: LayoutAdjacency,
		Flow:   FlowPush,
		Sync:   SyncAtomics,
		Prep:   PrepRadixSort,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Breakdown.Preprocess <= 0 {
		t.Fatal("pre-processing time must be accounted for the adjacency layout")
	}
	if res.Breakdown.Algorithm <= 0 {
		t.Fatal("algorithm time missing")
	}
	if res.Run.Iterations == 0 {
		t.Fatal("no iterations recorded")
	}
	if bfs.Reached() < 2 {
		t.Fatalf("BFS reached only %d vertices", bfs.Reached())
	}
}

func TestRunOnEdgeArrayHasNoPreprocessing(t *testing.T) {
	g := GenerateRMAT(10, 8, 2)
	res, err := g.Run(SpMV(), Config{Layout: LayoutEdgeArray, Flow: FlowPush, Sync: SyncAtomics})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Breakdown.Preprocess != 0 {
		t.Fatalf("edge array must not pay pre-processing, got %v", res.Breakdown.Preprocess)
	}
	if res.Run.Iterations != 1 {
		t.Fatalf("SpMV must finish in one iteration, got %d", res.Run.Iterations)
	}
}

func TestPrepareIsIdempotent(t *testing.T) {
	g := GenerateRMAT(10, 8, 3)
	cfg := Config{Layout: LayoutAdjacency, Flow: FlowPush, Sync: SyncAtomics}
	if _, err := g.Prepare(cfg); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if g.Internal().Out == nil {
		t.Fatal("out adjacency not built")
	}
	out := g.Internal().Out
	if _, err := g.Prepare(cfg); err != nil {
		t.Fatalf("second Prepare: %v", err)
	}
	if g.Internal().Out != out {
		t.Fatal("Prepare rebuilt an existing layout")
	}
}

func TestPreparePushPullBuildsBothDirections(t *testing.T) {
	g := GenerateRMAT(10, 8, 4)
	if _, err := g.Prepare(Config{Layout: LayoutAdjacency, Flow: FlowPushPull}); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if g.Internal().Out == nil || g.Internal().In == nil {
		t.Fatal("push-pull must build both adjacency directions")
	}
}

func TestPrepareGrid(t *testing.T) {
	g := GenerateRMAT(10, 8, 5)
	if _, err := g.Prepare(Config{Layout: LayoutGrid, GridP: 8}); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if g.Internal().Grid == nil {
		t.Fatal("grid not built")
	}
}

func TestRunGridPageRank(t *testing.T) {
	g := GenerateRMAT(11, 8, 6)
	pr := PageRank()
	pr.Iterations = 3
	res, err := g.Run(pr, Config{Layout: LayoutGrid, Flow: FlowPull, Sync: SyncPartitionFree})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Run.Iterations != 3 {
		t.Fatalf("iterations = %d", res.Run.Iterations)
	}
	total := pr.TotalRank()
	if total <= 0.1 || total > 1.000001 {
		t.Fatalf("total rank mass %v out of range", total)
	}
}

func TestUndirectedOverride(t *testing.T) {
	// A directed chain; WCC needs the undirected view to find one component.
	g := NewGraph([]Edge{{Src: 0, Dst: 1, W: 1}, {Src: 2, Dst: 1, W: 1}}, 3, true)
	undirected := true
	wcc := WCC()
	if _, err := g.Run(wcc, Config{
		Layout:     LayoutAdjacency,
		Flow:       FlowPush,
		Sync:       SyncAtomics,
		Undirected: &undirected,
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if wcc.NumComponents() != 1 {
		t.Fatalf("components = %d, want 1", wcc.NumComponents())
	}
}

func TestTextRoundTripThroughFacade(t *testing.T) {
	g := GenerateRoad(8, 8, 1)
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	loaded, err := LoadText(strings.NewReader(buf.String()), false)
	if err != nil {
		t.Fatalf("LoadText: %v", err)
	}
	if loaded.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d vs %d", loaded.NumEdges(), g.NumEdges())
	}
}

func TestBinaryRoundTripThroughFacade(t *testing.T) {
	g := GenerateTwitterProfile(8, 2)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	loaded, err := LoadBinary(&buf, true)
	if err != nil {
		t.Fatalf("LoadBinary: %v", err)
	}
	if loaded.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d vs %d", loaded.NumEdges(), g.NumEdges())
	}
}

func TestLoadBinaryOverlappedThroughFacade(t *testing.T) {
	g := GenerateRMAT(10, 8, 12)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	chunks := 0
	loaded, res, err := LoadBinaryOverlapped(&buf, DeviceHDD, true, func(chunk []Edge) {
		chunks++
		if len(chunk) == 0 {
			t.Fatal("empty chunk delivered")
		}
	})
	if err != nil {
		t.Fatalf("LoadBinaryOverlapped: %v", err)
	}
	if loaded.NumEdges() != g.NumEdges() {
		t.Fatalf("loaded %d edges, want %d", loaded.NumEdges(), g.NumEdges())
	}
	if chunks == 0 || res.Chunks != chunks {
		t.Fatalf("chunk accounting wrong: callback saw %d, result says %d", chunks, res.Chunks)
	}
	if res.LoadTime <= 0 || res.EndToEnd < res.LoadTime {
		t.Fatalf("implausible load accounting: %+v", res)
	}
	// The loaded graph is immediately usable.
	bfs := BFS(0)
	if _, err := loaded.Run(bfs, Config{Layout: LayoutEdgeArray, Flow: FlowPush, Sync: SyncAtomics}); err != nil {
		t.Fatalf("Run on loaded graph: %v", err)
	}
}

func TestLoadTextError(t *testing.T) {
	if _, err := LoadText(strings.NewReader("not an edge list"), true); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestRunInvalidConfigSurfacesError(t *testing.T) {
	g := GenerateRMAT(8, 4, 7)
	// Partition-free sync on an edge array is rejected by the engine.
	if _, err := g.Run(BFS(0), Config{Layout: LayoutEdgeArray, Flow: FlowPush, Sync: SyncPartitionFree}); err == nil {
		t.Fatal("expected validation error")
	}
	// Unknown layout is rejected by Prepare.
	if _, err := g.Prepare(Config{Layout: Layout(99)}); err == nil {
		t.Fatal("expected unknown-layout error")
	}
}

func TestBipartiteALSThroughFacade(t *testing.T) {
	const users = 500
	g := GenerateBipartite(users, 50, 8, 3)
	als := ALS(users)
	als.Sweeps = 2
	undirected := true
	res, err := g.Run(als, Config{
		Layout:     LayoutAdjacency,
		Flow:       FlowPull,
		Sync:       SyncPartitionFree,
		Undirected: &undirected,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Run.Iterations != 4 {
		t.Fatalf("iterations = %d, want 4 (2 sweeps)", res.Run.Iterations)
	}
	rmse := als.RMSE(g.Internal().EdgeArray.Edges)
	if rmse <= 0 || rmse > 5 {
		t.Fatalf("implausible RMSE %v", rmse)
	}
}

func TestSSSPRoadThroughFacade(t *testing.T) {
	g := GenerateRoad(16, 16, 9)
	sssp := SSSP(0)
	res, err := g.Run(sssp, Config{Layout: LayoutAdjacency, Flow: FlowPush, Sync: SyncAtomics})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sssp.Reached() != g.NumVertices() {
		t.Fatalf("SSSP reached %d of %d vertices", sssp.Reached(), g.NumVertices())
	}
	if res.Run.Iterations < 16 {
		t.Fatalf("high-diameter graph should need many iterations, got %d", res.Run.Iterations)
	}
}

func TestMaxIterationsCap(t *testing.T) {
	g := GenerateRoad(32, 32, 1)
	bfs := BFS(0)
	res, err := g.Run(bfs, Config{
		Layout:        LayoutAdjacency,
		Flow:          FlowPush,
		Sync:          SyncAtomics,
		MaxIterations: 5,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Run.Iterations != 5 {
		t.Fatalf("iterations = %d, want 5", res.Run.Iterations)
	}
}

func TestWorkersConfigRespected(t *testing.T) {
	g := GenerateRMAT(10, 8, 8)
	// Single worker must produce the same BFS levels as the default.
	bfs1 := BFS(0)
	if _, err := g.Run(bfs1, Config{Layout: LayoutAdjacency, Flow: FlowPush, Sync: SyncAtomics, Workers: 1}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	bfsN := BFS(0)
	if _, err := g.Run(bfsN, Config{Layout: LayoutAdjacency, Flow: FlowPush, Sync: SyncAtomics}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for v := range bfs1.Level {
		if bfs1.Level[v] != bfsN.Level[v] {
			t.Fatalf("levels differ at vertex %d", v)
		}
	}
}

func TestFlowAutoThroughFacade(t *testing.T) {
	g := GenerateRMAT(12, 8, 1)
	bfs := BFS(0)
	// The bare config — no Layout (zero value is LayoutEdgeArray) — is the
	// advertised "one entry point": it must still prepare adjacency lists
	// so the planner has real choices instead of being stranded on the
	// edge array.
	res, err := g.Run(bfs, Config{Flow: FlowAuto})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Run.Iterations == 0 {
		t.Fatal("no iterations recorded")
	}
	if g.Internal().Out == nil || g.Internal().In == nil {
		t.Fatal("auto must prepare both adjacency directions")
	}
	if res.Breakdown.Preprocess <= 0 {
		t.Fatal("auto's adjacency build must be accounted as pre-processing")
	}
	zero := StepPlan{}
	sawAdjacency := false
	for i, it := range res.Run.PerIteration {
		if it.Plan == zero {
			t.Fatalf("iteration %d recorded no plan", i)
		}
		if it.Plan.Layout == LayoutAdjacency {
			sawAdjacency = true
		}
	}
	if !sawAdjacency {
		t.Fatal("planner never used the adjacency lists prepared for it")
	}
	if trace := res.Run.PlanTrace(); len(trace) != res.Run.Iterations {
		t.Fatalf("plan trace %d entries, want %d", len(trace), res.Run.Iterations)
	}

	// The validation gap: an alpha on a static flow must surface an error
	// through the facade instead of being silently ignored.
	if _, err := g.Run(BFS(0), Config{
		Layout: LayoutAdjacency, Flow: FlowPush, Sync: SyncAtomics, PushPullAlpha: 20,
	}); err == nil {
		t.Fatal("PushPullAlpha with a static flow must be rejected")
	}
}

func TestGridLevelsThroughFacade(t *testing.T) {
	// A grid-only preparation forced to the paper's 256 on a small graph:
	// the misfit the resolution planner exists to correct. Edge factor 16
	// keeps the per-edge span amortization good enough that the grid beats
	// the edge-array fallback in the cost model.
	g := GenerateRMAT(12, 16, 1)
	cfg := Config{Layout: LayoutGrid, Flow: FlowAuto, GridP: 256}
	pr := PageRank()
	res, err := g.Run(pr, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	frozen := res.Run.PerIteration[0].Plan
	if frozen.Layout != LayoutGrid || frozen.GridLevel == 0 {
		t.Fatalf("grid-only auto froze %v, want a grid plan with a resolution", frozen)
	}
	for i, it := range res.Run.PerIteration {
		if it.Plan != frozen {
			t.Fatalf("iteration %d switched resolution mid-run: %v", i, it.Plan)
		}
	}

	// Pinning a coarser level through the facade changes the executed
	// resolution, halving P per step.
	pinned := PageRank()
	pinRes, err := g.Run(pinned, Config{
		Layout: LayoutGrid, Flow: FlowPush, Sync: SyncPartitionFree, GridP: 256, GridLevels: 2,
	})
	if err != nil {
		t.Fatalf("pinned run: %v", err)
	}
	if got := pinRes.Run.PerIteration[0].Plan.GridLevel; got != 128 {
		t.Fatalf("GridLevels=2 ran grid/%d, want grid/128", got)
	}

	// The policy needs a grid: static non-grid configurations reject it.
	if _, err := g.Run(BFS(0), Config{
		Layout: LayoutAdjacency, Flow: FlowPush, Sync: SyncAtomics, GridLevels: 2,
	}); err == nil {
		t.Fatal("GridLevels with a static adjacency flow must be rejected")
	}
}
