// Package everythinggraph is a multicore graph-processing library that
// reproduces the system built for the study "Everything you always wanted to
// know about multicore graph processing but were afraid to ask" (Malicevic,
// Lepers, Zwaenepoel; USENIX ATC 2017).
//
// The library deliberately exposes the paper's decision space as
// configuration rather than hiding it behind a single "best" implementation:
//
//   - Layout: edge array, adjacency lists (CSR, optionally sorted) or a
//     GridGraph-style grid of cells;
//   - Pre-processing method: dynamic building, count sort or parallel radix
//     sort;
//   - Information flow: push, pull or direction-optimizing push-pull;
//   - Synchronization: locks, atomics or partition-based lock freedom;
//   - Placement: interleaved or NUMA-aware — offline simulation (see
//     internal/numa) and, on multi-socket Linux hosts, real planner-chosen
//     socket pinning of in-memory runs (Config.Placement).
//
// Every run reports an end-to-end time breakdown (load, pre-processing,
// partitioning, algorithm), because the paper's central result is that
// pre-processing often dominates and must not be ignored.
//
// Quick start:
//
//	g := everythinggraph.GenerateRMAT(18, 16, 1)
//	res, err := g.Run(everythinggraph.BFS(0), everythinggraph.Config{
//		Layout: everythinggraph.LayoutAdjacency,
//		Flow:   everythinggraph.FlowPush,
//		Sync:   everythinggraph.SyncAtomics,
//	})
//	fmt.Println(res.Breakdown)
package everythinggraph

import (
	"fmt"
	"io"

	"github.com/epfl-repro/everythinggraph/internal/algorithms"
	"github.com/epfl-repro/everythinggraph/internal/core"
	"github.com/epfl-repro/everythinggraph/internal/gen"
	"github.com/epfl-repro/everythinggraph/internal/graph"
	"github.com/epfl-repro/everythinggraph/internal/metrics"
	"github.com/epfl-repro/everythinggraph/internal/numa"
	"github.com/epfl-repro/everythinggraph/internal/oocore"
	"github.com/epfl-repro/everythinggraph/internal/prep"
	"github.com/epfl-repro/everythinggraph/internal/sched"
	"github.com/epfl-repro/everythinggraph/internal/storage"
	"github.com/epfl-repro/everythinggraph/internal/trace"
)

// Re-exported element types.
type (
	// Edge is a directed edge (source, destination, weight).
	Edge = graph.Edge
	// VertexID identifies a vertex.
	VertexID = graph.VertexID
	// Weight is an edge weight.
	Weight = graph.Weight
	// Layout selects the in-memory representation iterated by the engine.
	Layout = graph.Layout
	// Flow selects push, pull or push-pull propagation.
	Flow = core.Flow
	// Sync selects the synchronization discipline.
	Sync = core.SyncMode
	// PrepMethod selects how adjacency lists and grids are built.
	PrepMethod = prep.Method
	// Algorithm is the contract implemented by every graph algorithm.
	Algorithm = core.Algorithm
	// Breakdown is the end-to-end time breakdown of a run.
	Breakdown = metrics.Breakdown
	// IterationStats describes one engine iteration.
	IterationStats = core.IterationStats
	// StepPlan is the resolved {layout, flow, sync} recipe one iteration
	// ran under; adaptive runs record one per iteration.
	StepPlan = core.StepPlan
	// IOStats is the storage accounting of an out-of-core (streamed) run.
	IOStats = core.SourceStats
)

// Layout constants.
const (
	// LayoutEdgeArray streams the raw edge array (edge-centric).
	LayoutEdgeArray = graph.LayoutEdgeArray
	// LayoutAdjacency iterates per-vertex edge arrays (vertex-centric).
	LayoutAdjacency = graph.LayoutAdjacency
	// LayoutAdjacencySorted is LayoutAdjacency with neighbour lists sorted
	// by destination.
	LayoutAdjacencySorted = graph.LayoutAdjacencySorted
	// LayoutGrid iterates a 2-D grid of edge cells.
	LayoutGrid = graph.LayoutGrid
	// LayoutGridCompressed iterates the grid's delta+varint-compressed
	// cells: the same cell structure and per-destination visit order (so
	// float results stay bit-identical to LayoutGrid), a fraction of the
	// memory traffic.
	LayoutGridCompressed = graph.LayoutGridCompressed
)

// Flow constants.
const (
	// FlowPush propagates from active vertices to their out-neighbours.
	FlowPush = core.Push
	// FlowPull lets destinations read from their in-neighbours.
	FlowPull = core.Pull
	// FlowPushPull switches per iteration (direction-optimizing).
	FlowPushPull = core.PushPull
	// FlowAuto hands direction, layout and synchronization to the adaptive
	// execution planner, which picks per iteration among the layouts
	// materialized on the graph using density thresholds and measured
	// costs. Config.Layout and Config.Sync become preparation hints.
	FlowAuto = core.Auto
)

// Sync constants.
const (
	// SyncLocks protects destination updates with striped locks.
	SyncLocks = core.SyncLocks
	// SyncAtomics uses atomic edge functions.
	SyncAtomics = core.SyncAtomics
	// SyncPartitionFree relies on destination ownership (pull mode, grid
	// columns) to avoid synchronization entirely.
	SyncPartitionFree = core.SyncPartitionFree
)

// Pre-processing method constants.
const (
	// PrepDynamic grows per-vertex arrays while scanning the input.
	PrepDynamic = prep.Dynamic
	// PrepCountSort builds CSR with a two-pass count sort.
	PrepCountSort = prep.CountSort
	// PrepRadixSort builds CSR with a parallel 8-bit radix sort.
	PrepRadixSort = prep.RadixSort
)

// Graph is a dataset plus whatever layouts have been materialized for it.
type Graph struct {
	g *graph.Graph
}

// NewGraph wraps a raw edge list. If numVertices is zero it is derived from
// the edges. directed records whether the dataset is directed (undirected
// datasets store each edge once and are traversed symmetrically).
func NewGraph(edges []Edge, numVertices int, directed bool) *Graph {
	return &Graph{g: graph.New(edges, numVertices, directed)}
}

// Internal exposes the underlying graph for the benchmark harness and tests
// inside this module.
func (g *Graph) Internal() *graph.Graph { return g.g }

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return g.g.NumVertices() }

// NumEdges returns the stored edge count.
func (g *Graph) NumEdges() int { return g.g.NumEdges() }

// GenerateRMAT generates an RMAT power-law graph with 2^scale vertices and
// 2^scale*edgeFactor edges (the paper's RMAT-N datasets use edgeFactor 16).
func GenerateRMAT(scale, edgeFactor int, seed int64) *Graph {
	return &Graph{g: gen.RMAT(gen.RMATOptions{Scale: scale, EdgeFactor: edgeFactor, Seed: seed})}
}

// GenerateTwitterProfile generates a directed graph with Twitter-like skew
// (stand-in for the Twitter follower graph; see DESIGN.md).
func GenerateTwitterProfile(scale int, seed int64) *Graph {
	return &Graph{g: gen.TwitterProfile(gen.TwitterProfileOptions{Scale: scale, Seed: seed})}
}

// GenerateRoad generates an undirected high-diameter road-network-like
// lattice with width*height vertices (stand-in for the DIMACS US-Road
// graph).
func GenerateRoad(width, height int, seed int64) *Graph {
	return &Graph{g: gen.Road(gen.RoadOptions{Width: width, Height: height, ShortcutFraction: 0.05, Seed: seed, Weighted: true})}
}

// GenerateBipartite generates a bipartite rating graph with the given user
// and item counts (stand-in for the Netflix dataset used by ALS).
func GenerateBipartite(users, items, ratingsPerUser int, seed int64) *Graph {
	return &Graph{g: gen.Bipartite(gen.BipartiteOptions{Users: users, Items: items, RatingsPerUser: ratingsPerUser, Seed: seed})}
}

// Device is a (simulated) storage medium used by the loading experiments:
// loading N bytes from it takes N/bandwidth seconds of simulated time.
type Device = storage.Device

// The device profiles of the paper's evaluation (Section 3.5).
var (
	// DeviceMemory models an already-resident input (zero load time).
	DeviceMemory = storage.Memory
	// DeviceSSD models the paper's SATA SSD (380 MB/s).
	DeviceSSD = storage.SSD
	// DeviceHDD models the paper's hard drive (100 MB/s).
	DeviceHDD = storage.HDD
)

// LoadResult reports an overlapped load: the simulated device time, the
// measured consumer time and the pipelined end-to-end completion time.
type LoadResult = storage.LoadResult

// LoadBinaryOverlapped streams a binary edge list as if it were read from
// the given device, invoking consume for every chunk as it arrives — the
// mechanism that lets dynamic pre-processing hide behind a slow device
// (Section 3.4). Pass a nil consumer to just measure the load.
func LoadBinaryOverlapped(r io.Reader, dev Device, directed bool, consume func(chunk []Edge)) (*Graph, *LoadResult, error) {
	res, err := storage.LoadOverlapped(r, dev, 0, consume)
	if err != nil {
		return nil, nil, err
	}
	return NewGraph(res.Edges, 0, directed), res, nil
}

// LoadBinary reads a graph in the library's binary edge format.
func LoadBinary(r io.Reader, directed bool) (*Graph, error) {
	edges, err := storage.ReadBinary(r)
	if err != nil {
		return nil, err
	}
	return NewGraph(edges, 0, directed), nil
}

// LoadText reads a graph from a whitespace-separated edge list.
func LoadText(r io.Reader, directed bool) (*Graph, error) {
	edges, err := storage.ReadText(r)
	if err != nil {
		return nil, err
	}
	return NewGraph(edges, 0, directed), nil
}

// WriteBinary writes the graph's edge array in the binary edge format.
func (g *Graph) WriteBinary(w io.Writer) error {
	return storage.WriteBinary(w, g.g.EdgeArray.Edges)
}

// WriteText writes the graph's edge array as a text edge list.
func (g *Graph) WriteText(w io.Writer) error {
	return storage.WriteText(w, g.g.EdgeArray.Edges)
}

// Config selects the techniques for Prepare and Run.
type Config struct {
	// Layout selects the data layout (default LayoutAdjacency).
	Layout Layout
	// Flow selects push/pull/push-pull/auto (default FlowPush). FlowAuto
	// delegates the whole per-iteration technique choice to the adaptive
	// planner; the chosen plans are recorded in Result.Run.PerIteration.
	Flow Flow
	// Sync selects locks/atomics/partition-free (default SyncAtomics).
	Sync Sync
	// Prep selects the pre-processing method (default PrepRadixSort).
	Prep PrepMethod
	// SortNeighbors additionally sorts adjacency lists by destination.
	SortNeighbors bool
	// Undirected treats the dataset as undirected during pre-processing
	// (required by WCC on directed inputs). It defaults to the dataset's
	// own directedness.
	Undirected *bool
	// GridP is the grid dimension (0 = the paper's 256, clamped for small
	// graphs and — for oversized requests — by LLC fit).
	GridP int
	// GridLevels is the grid-resolution policy over the grid's coarsening
	// ladder — the virtual coarser views the prep builders attach to every
	// in-memory grid, and the zero-copy coalescing levels of an on-disk
	// store (Store runs stream coarse cells as merged reads of the same
	// bytes, bit-identical to the finest level). With FlowAuto, N > 0
	// restricts the planner to the finest N resolutions and 0 (the
	// default) lets it choose among every level; on a static grid
	// configuration N > 0 pins execution to the N-th level (1 = the
	// materialized/stored P, 2 = P/2, ...). Static flows on other layouts
	// reject it.
	GridLevels int
	// Workers bounds parallelism (0 = all CPUs).
	Workers int
	// MaxIterations caps the engine iterations (0 = no cap).
	MaxIterations int
	// RecordFrontiers stores per-iteration frontiers for NUMA analysis.
	RecordFrontiers bool
	// PushPullAlpha overrides the direction-switch threshold denominator.
	// Only the dynamic flows (FlowPushPull, FlowAuto) read it; setting it
	// with a static flow is rejected at validation instead of being
	// silently ignored.
	PushPullAlpha int
	// MemoryBudget bounds the resident edge-buffer bytes of out-of-core
	// (Store) runs; in-memory runs ignore it. 0 selects the default
	// (256 MiB). Static flows use the whole budget; FlowAuto treats it as
	// a ceiling and plans the working budget per iteration.
	MemoryBudget int64
	// PrefetchDepth is the per-worker prefetch pipeline depth of
	// out-of-core (Store) runs: how many segment buffers each worker keeps
	// in rotation (0 = 2, classic double buffering). Static flows pin it;
	// FlowAuto starts there and adapts per iteration from the measured
	// I/O-wait breakdown.
	PrefetchDepth int
	// CostPriors seeds FlowAuto's cost model with measured per-edge plan
	// costs from an earlier run (see Result.Run.PlanCosts and
	// internal/costcache); static flows reject it.
	CostPriors map[string]float64
	// Lease pins the run to a reserved subset of the shared worker pool
	// (see NewLease), so several runs execute truly concurrently instead
	// of interleaving on the global gang loop. Workers is clamped to the
	// lease's size. nil (the default) runs on the shared pool.
	Lease *Lease
	// Placement selects the NUMA placement policy of in-memory runs on
	// multi-socket Linux hosts: PlacementAuto (the default) makes placement
	// a planner-chosen dimension — every candidate plan gains a node-pinned
	// twin whose workers CPU-pin to one socket, chosen from modeled priors
	// and measured per-iteration costs — PlacementInterleaved never pins,
	// and PlacementPinned forces the whole run onto one node. Results are
	// bit-identical across placements (pinning moves threads, never the
	// iteration order). On single-node or non-Linux hosts every policy
	// degrades to plain interleaved execution; Store (out-of-core) runs
	// always execute interleaved — they are bound by the device, not the
	// interconnect.
	Placement Placement
	// Trace attaches a run recorder (see NewTraceRecorder): the engine,
	// planners, scheduler and — on Store runs — the fetcher pipeline record
	// iteration spans, planner decisions and I/O events into it, and
	// Result.Run.Metrics is filled with the counters-and-histograms
	// snapshot. nil (the default) disables tracing entirely. A recorder
	// belongs to one run at a time; reusing it across consecutive runs
	// appends to the same timeline.
	Trace *TraceRecorder
}

// Placement is the NUMA placement policy of a run (see Config.Placement).
type Placement = core.PlacementPolicy

// Placement policies.
const (
	// PlacementAuto lets the planner choose per iteration between
	// interleaved and node-pinned execution (the default; a no-op on
	// single-node hosts).
	PlacementAuto = core.PlacementAuto
	// PlacementInterleaved never pins — the paper's interleaved baseline.
	PlacementInterleaved = core.PlacementInterleaved
	// PlacementPinned forces the run onto one NUMA node.
	PlacementPinned = core.PlacementPinned
)

// NumNUMANodes returns the number of NUMA nodes of the host's discovered
// topology (1 on non-NUMA and non-Linux hosts, where placement degrades to
// interleaved execution).
func NumNUMANodes() int { return numa.Default().NumNodes() }

// NUMATopology returns a one-line description of the host's discovered NUMA
// topology (nodes, their CPU lists and free memory), as printed by the CLIs.
func NUMATopology() string { return numa.Default().String() }

// TraceRecorder is a run-scoped trace event recorder. Attach one via
// Config.Trace, then export with WriteChromeTrace (a Chrome/Perfetto
// trace-event file) or Snapshot (flat counters and histograms).
type TraceRecorder = trace.Recorder

// NewTraceRecorder returns a recorder with a ring buffer of the given event
// capacity (rounded up to a power of two; <= 0 selects the default). When
// the ring fills, the oldest events are dropped and counted.
func NewTraceRecorder(capacity int) *TraceRecorder {
	return trace.NewRecorder(capacity)
}

// MetricsSnapshot is the flat counters-and-histograms view of a traced run,
// available as Result.Run.Metrics after a traced run completes.
type MetricsSnapshot = metrics.Snapshot

// Result reports one end-to-end run.
type Result struct {
	// Breakdown is the end-to-end time split (load/pre-process/partition/
	// algorithm). Prepare fills Preprocess; Run fills Algorithm.
	Breakdown Breakdown
	// Run holds the engine's per-iteration statistics.
	Run *core.Result
}

// isUndirected resolves the Undirected override.
func (c Config) isUndirected(g *graph.Graph) bool {
	if c.Undirected != nil {
		return *c.Undirected
	}
	return !g.Directed
}

// Prepare builds the layouts required by cfg and returns the time spent.
// It is idempotent per layout: already-built layouts are not rebuilt.
func (g *Graph) Prepare(cfg Config) (Breakdown, error) {
	var bd Breakdown
	sw := metrics.NewStopwatch()
	opt := prep.Options{
		Method:        cfg.Prep,
		Workers:       cfg.Workers,
		SortNeighbors: cfg.SortNeighbors || cfg.Layout == LayoutAdjacencySorted,
		Undirected:    cfg.isUndirected(g.g),
	}
	switch cfg.Layout {
	case LayoutEdgeArray:
		if cfg.Flow == FlowAuto {
			// The zero-value Layout must not strand the planner on the
			// edge array — its whole point is choosing among layouts, so
			// give it both adjacency directions to work with.
			dir := prep.InOut
			if opt.Undirected {
				dir = prep.Out
			}
			if err := g.ensureAdjacency(dir, opt); err != nil {
				return bd, err
			}
			break
		}
		// Nothing to build: the edge array is the input format, so its
		// pre-processing cost is exactly zero (Section 3.2 of the paper).
		return bd, nil
	case LayoutAdjacency, LayoutAdjacencySorted:
		dir := prep.Out
		switch cfg.Flow {
		case FlowPull:
			dir = prep.In
		case FlowPushPull, FlowAuto:
			// The dynamic flows need both directions resident so the
			// planner can switch between them.
			dir = prep.InOut
		}
		if opt.Undirected {
			// Undirected adjacency lists double the edges; a single set of
			// per-vertex arrays serves both directions.
			dir = prep.Out
		}
		if err := g.ensureAdjacency(dir, opt); err != nil {
			return bd, err
		}
	case LayoutGrid:
		if g.g.Grid == nil {
			if err := prep.BuildGrid(g.g, cfg.GridP, opt); err != nil {
				return bd, err
			}
		}
	case LayoutGridCompressed:
		if g.g.Compressed == nil {
			if err := prep.BuildCompressedGrid(g.g, cfg.GridP, opt); err != nil {
				return bd, err
			}
		}
	default:
		return bd, fmt.Errorf("everythinggraph: unknown layout %v", cfg.Layout)
	}
	bd.Preprocess = sw.Lap()
	return bd, nil
}

// ensureAdjacency builds only the missing adjacency directions.
func (g *Graph) ensureAdjacency(dir prep.Direction, opt prep.Options) error {
	switch dir {
	case prep.Out:
		if g.g.Out != nil {
			return nil
		}
	case prep.In:
		if g.g.In != nil {
			return nil
		}
	case prep.InOut:
		if g.g.Out != nil && g.g.In != nil {
			return nil
		}
		if g.g.Out != nil {
			dir = prep.In
		} else if g.g.In != nil {
			dir = prep.Out
		}
	}
	return prep.BuildAdjacency(g.g, dir, opt)
}

// Run prepares the graph for cfg (timing the pre-processing) and executes
// the algorithm, returning the end-to-end breakdown and the engine result.
func (g *Graph) Run(alg Algorithm, cfg Config) (*Result, error) {
	prepBD, err := g.Prepare(cfg)
	if err != nil {
		return nil, err
	}
	engineCfg := core.Config{
		Layout:          cfg.Layout,
		Flow:            cfg.Flow,
		Sync:            cfg.Sync,
		Workers:         cfg.Workers,
		PushPullAlpha:   cfg.PushPullAlpha,
		GridLevels:      cfg.GridLevels,
		MaxIterations:   cfg.MaxIterations,
		RecordFrontiers: cfg.RecordFrontiers,
		CostPriors:      cfg.CostPriors,
		Lease:           cfg.Lease,
		Placement:       cfg.Placement,
		Trace:           cfg.Trace,
	}
	res, err := core.Run(g.g, alg, engineCfg)
	if err != nil {
		return nil, err
	}
	bd := prepBD
	bd.Algorithm = res.AlgorithmTime
	return &Result{Breakdown: bd, Run: res}, nil
}

// ValidateTechniques rejects {layout, flow, sync} combinations that no
// dataset can run (the graph-independent rules of Section 6), so callers
// can fail fast with one clear error before generating or loading a graph.
func ValidateTechniques(layout Layout, flow Flow, sync Sync) error {
	return core.ValidateTechniques(layout, flow, sync)
}

// Store is an open out-of-core partitioned grid store: the grid layout of
// Section 5.1, resident on disk as per-cell segments and streamed through
// a bounded memory budget during execution (see internal/oocore for the
// format). Only vertex-level metadata is kept in memory.
type Store struct {
	s *oocore.Store
}

// OpenStore opens a partitioned grid store file, validating its checksums
// and that no edge segment is truncated.
func OpenStore(path string) (*Store, error) {
	s, err := oocore.Open(path)
	if err != nil {
		return nil, err
	}
	return &Store{s: s}, nil
}

// BuildStore writes g's edges as a partitioned grid store at path. gridP
// follows Config.GridP semantics (0 = the paper's 256, clamped for small
// graphs); undirected mirrors each edge into the store, which WCC requires.
func BuildStore(path string, g *Graph, gridP int, undirected bool) error {
	_, err := oocore.BuildStoreFromGraph(path, g.g, gridP, undirected)
	return err
}

// BuildCompressedStore is BuildStore for the version-2 format: cells are
// written as delta+varint-compressed segments (weights, when present, in a
// parallel plane), decoded inside the prefetch pipeline during streamed
// runs. Results stay bit-identical to version-1 stores and in-memory runs;
// only the bytes moved per pass shrink.
func BuildCompressedStore(path string, g *Graph, gridP int, undirected bool) error {
	_, err := oocore.BuildCompressedStoreFromGraph(path, g.g, gridP, undirected)
	return err
}

// Close releases the store's file handle.
func (st *Store) Close() error { return st.s.Close() }

// NumVertices returns the store's vertex count.
func (st *Store) NumVertices() int { return st.s.NumVertices() }

// NumEdges returns the number of stored edge records (doubled for
// undirected stores).
func (st *Store) NumEdges() int64 { return st.s.NumEdges() }

// GridP returns the store's grid dimension.
func (st *Store) GridP() int { return st.s.GridP() }

// Undirected reports whether edges were mirrored into the store.
func (st *Store) Undirected() bool { return st.s.Undirected() }

// FormatVersion returns the store's on-disk format version: 1 for
// fixed-record segments, 2 for compressed segments.
func (st *Store) FormatVersion() int { return st.s.Header().Version }

// Compressed reports whether the store holds compressed (version-2) cell
// segments.
func (st *Store) Compressed() bool { return st.s.Compressed() }

// Weighted reports whether a version-2 store carries a weight plane
// (version-1 stores always store weights inline, so this is only
// meaningful for compressed stores).
func (st *Store) Weighted() bool { return st.s.Header().Weighted }

// CompressionRatio returns raw edge bytes (12 per stored edge) over the
// store's actual edge-data footprint — 1 for version-1 stores, typically
// 3-5x for compressed RMAT stores.
func (st *Store) CompressionRatio() float64 {
	p := st.s.GridP()
	var stored int64
	for cell := 0; cell < p*p; cell++ {
		stored += st.s.CellStoredBytes(cell)
	}
	if stored == 0 {
		return 1
	}
	return float64(st.s.NumEdges()*12) / float64(stored)
}

// Levels returns the grid dimensions of the store's virtual coarsening
// ladder, finest first (the stored P, then each halving down to 1).
// Streamed runs can execute at any rung bit-identically — coarse cells are
// coalesced reads of the same bytes — and Repartition can make any rung
// the store's physical resolution.
func (st *Store) Levels() []int {
	levels := st.s.Levels()
	out := make([]int, len(levels))
	for i, lv := range levels {
		out[i] = lv.P
	}
	return out
}

// Repartition rewrites the store at outPath with targetP — which must be a
// rung of Levels() — optionally switching formats (compressed selects the
// version-2 layout). The output is CRC-verified before returning, and runs
// over it are bit-identical to runs over the source: the offline
// counterpart of the planner streaming at a coarser virtual level. See
// cmd/egsrepack for the CLI, including choosing targetP from measured
// costs.
func (st *Store) Repartition(outPath string, targetP int, compressed bool) error {
	_, err := oocore.Repartition(st.s, outPath, targetP, compressed)
	return err
}

// SetDevice attaches a virtual-bandwidth device model (DeviceSSD,
// DeviceHDD) to the store. Reads always account the simulated device time;
// with pace set they also sleep on a shared virtual clock, so the overlap
// between prefetching and compute reproduces the paper's storage
// experiments in wall-clock time.
func (st *Store) SetDevice(d Device, pace bool) { st.s.SetDevice(d, pace) }

// IOStats returns the store's cumulative storage accounting.
func (st *Store) IOStats() IOStats { return st.s.Stats() }

// Run executes alg out-of-core over the store's streamed cells. Streamed
// execution is the grid layout under partition-free column scheduling —
// the only discipline whose ownership argument survives cells arriving
// from disk — so cfg.Layout and cfg.Sync are ignored and forced to
// LayoutGrid and SyncPartitionFree; Flow (push, pull or the switching
// combination), Workers, MemoryBudget and the iteration caps are honoured.
// The breakdown reports how much of the algorithm time stalled on storage
// and how much storage time the prefetch overlap hid.
func (st *Store) Run(alg Algorithm, cfg Config) (*Result, error) {
	engineCfg := core.Config{
		Layout:          LayoutGrid,
		Flow:            cfg.Flow,
		Sync:            SyncPartitionFree,
		Workers:         cfg.Workers,
		PushPullAlpha:   cfg.PushPullAlpha,
		GridLevels:      cfg.GridLevels,
		MaxIterations:   cfg.MaxIterations,
		RecordFrontiers: cfg.RecordFrontiers,
		MemoryBudget:    cfg.MemoryBudget,
		PrefetchDepth:   cfg.PrefetchDepth,
		CostPriors:      cfg.CostPriors,
		Lease:           cfg.Lease,
		Trace:           cfg.Trace,
	}
	before := st.s.Stats()
	res, err := core.RunStreamed(st.s, alg, engineCfg)
	if err != nil {
		return nil, err
	}
	io := res.IO.Sub(before)
	hidden := io.IOTime - io.IOWait
	if hidden < 0 {
		hidden = 0
	}
	bd := Breakdown{
		Algorithm: res.AlgorithmTime,
		IOWait:    io.IOWait,
		IOHidden:  hidden,
	}
	return &Result{Breakdown: bd, Run: res}, nil
}

// Lease is a reserved subset of the shared worker pool. Runs configured
// with a lease (Config.Lease) execute on exactly that subset with their own
// gang-loop state, so two leased runs — in-memory or streamed, even over one
// open Store — proceed concurrently instead of serializing on the global
// loop. Release it when done; a released lease's workers rejoin the shared
// pool.
type Lease = sched.Lease

// NewLease reserves up to n workers of the shared pool (the caller's
// goroutine always participates, so a lease never computes with fewer than
// one worker; when the pool is fully subscribed the lease may hold fewer
// than n). Always pair with Release.
func NewLease(n int) *Lease { return sched.DefaultPool().Lease(n) }

// BatchKind selects which algorithm a Batch call runs.
type BatchKind = core.BatchKind

// Batch kinds.
const (
	// BatchBFS batches breadth-first traversals.
	BatchBFS = core.BatchBFS
	// BatchSSSP batches single-source shortest-path computations.
	BatchSSSP = core.BatchSSSP
)

// BatchSourceResult is one source's share of a batched multi-source run.
type BatchSourceResult = core.BatchSourceResult

// Batch answers many same-algorithm queries in one go: sources are packed
// into bit-parallel multi-source sweeps of up to 64 roots (MS-BFS style —
// one traversal visits each edge once for all roots of its group), and when
// several groups are needed they run concurrently on worker-pool leases
// sized by the planner's measured costs. Results are fanned back out
// per source. cfg follows Run semantics; cfg.Workers bounds the combined
// worker count across groups.
func (g *Graph) Batch(kind BatchKind, sources []VertexID, cfg Config) ([]BatchSourceResult, error) {
	if _, err := g.Prepare(cfg); err != nil {
		return nil, err
	}
	engineCfg := core.Config{
		Layout:          cfg.Layout,
		Flow:            cfg.Flow,
		Sync:            cfg.Sync,
		Workers:         cfg.Workers,
		PushPullAlpha:   cfg.PushPullAlpha,
		GridLevels:      cfg.GridLevels,
		MaxIterations:   cfg.MaxIterations,
		RecordFrontiers: cfg.RecordFrontiers,
		CostPriors:      cfg.CostPriors,
		Lease:           cfg.Lease,
		Placement:       cfg.Placement,
		Trace:           cfg.Trace,
	}
	return core.Batch(g.g, kind, sources, engineCfg)
}

// Algorithm constructors.

// BFS returns a breadth-first search rooted at source.
func BFS(source VertexID) *algorithms.BFS { return algorithms.NewBFS(source) }

// PageRank returns a PageRank with the paper's defaults (10 iterations,
// damping 0.85).
func PageRank() *algorithms.PageRank { return algorithms.NewPageRank() }

// WCC returns a weakly-connected-components computation.
func WCC() *algorithms.WCC { return algorithms.NewWCC() }

// SSSP returns a single-source shortest-paths computation rooted at source.
func SSSP(source VertexID) *algorithms.SSSP { return algorithms.NewSSSP(source) }

// MultiBFS returns a bit-parallel batched BFS answering up to 64 sources in
// one traversal (MS-BFS): per-vertex source bitmaps ride each edge visit, so
// the sweep costs one scan for the whole batch. Use Graph.Batch for
// arbitrarily many sources.
func MultiBFS(sources []VertexID) *algorithms.MultiBFS { return algorithms.NewMultiBFS(sources) }

// MultiSSSP returns a bit-parallel batched Bellman-Ford answering up to 64
// sources in one sweep; see MultiBFS.
func MultiSSSP(sources []VertexID) *algorithms.MultiSSSP { return algorithms.NewMultiSSSP(sources) }

// SpMV returns a sparse matrix-vector multiplication with an all-ones input
// vector.
func SpMV() *algorithms.SpMV { return algorithms.NewSpMV() }

// ALS returns an alternating-least-squares factorization for a bipartite
// graph whose first `users` vertices are users.
func ALS(users int) *algorithms.ALS { return algorithms.NewALS(users) }
